package shadoweng

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

// Reserved ranges for the overwriting engines.
const (
	scratchBase int64 = -2000000 // scratch ring blocks
	intentBase  int64 = -3000000 // intention-list slots
	intentSlots       = 64
)

func scratchID(k int64) pagestore.PageID { return pagestore.PageID(scratchBase - k) }
func intentID(slot int) pagestore.PageID { return pagestore.PageID(intentBase - int64(slot)) }

// ErrBusy is returned when every intention-list slot is held by a
// concurrent transaction. The paper's intention list is a fixed on-disk
// structure, so this is an admission limit, not a bug: the caller aborts
// and retries once a slot frees up (wrapper layers surface it as a
// retryable condition).
var ErrBusy = errors.New("shadoweng: no free intent slot")

// Variant selects the overwriting flavour.
type Variant int

const (
	// NoUndo: updates go to the scratch area first; commit is an intention
	// record; shadows are overwritten after commit. Recovery redoes
	// unfinished overwrites of committed transactions.
	NoUndo Variant = iota
	// NoRedo: originals are saved to the scratch area and pages are updated
	// in place. Recovery restores the originals of uncommitted
	// transactions.
	NoRedo
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == NoRedo {
		return "no-redo"
	}
	return "no-undo"
}

// intent is a durable intention record: the pairs a transaction intends to
// (no-undo) or already did (no-redo) apply.
type intent struct {
	Txn   uint64
	Pairs [][2]int64 // (logical page, scratch block)
}

func marshalIntent(in intent) []byte {
	buf := make([]byte, 0, 16+16*len(in.Pairs))
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(in.Txn)
	put(uint64(len(in.Pairs)))
	for _, pr := range in.Pairs {
		put(uint64(pr[0]))
		put(uint64(pr[1]))
	}
	return buf
}

func unmarshalIntent(buf []byte) (intent, error) {
	if len(buf) < 16 {
		return intent{}, fmt.Errorf("shadoweng: intent record too short")
	}
	var in intent
	in.Txn = binary.BigEndian.Uint64(buf)
	n := int(binary.BigEndian.Uint64(buf[8:]))
	if len(buf) < 16+16*n {
		return intent{}, fmt.Errorf("shadoweng: truncated intent record")
	}
	off := 16
	for i := 0; i < n; i++ {
		in.Pairs = append(in.Pairs, [2]int64{
			int64(binary.BigEndian.Uint64(buf[off:])),
			int64(binary.BigEndian.Uint64(buf[off+8:])),
		})
		off += 16
	}
	return in, nil
}

// OverwriteEngine implements the overwriting shadow architectures. Pages
// live at their home locations (block id = logical page id), preserving
// physical sequentiality — the property the paper builds these variants for.
type OverwriteEngine struct {
	store   *pagestore.Store
	variant Variant

	nextScratch int64

	// Per-transaction state. No-undo: buffered new values. No-redo: saved
	// originals' scratch blocks and assigned intent slot.
	att map[uint64]*owTxn

	commits  int64
	aborts   int64
	redone   int64
	restored int64

	// journal, when attached, records recovery decisions in order (nil is
	// a no-op sink; survives Crash).
	journal *obs.Journal
}

type owTxn struct {
	writes map[int64][]byte // no-undo: pending new values
	saved  map[int64]int64  // no-redo: logical -> scratch block of original
	order  []int64          // touch order for deterministic records
	slot   int              // no-redo: its intent slot
}

// NewOverwrite creates an overwriting engine of the given variant on store.
func NewOverwrite(store *pagestore.Store, variant Variant) *OverwriteEngine {
	return &OverwriteEngine{
		store:   store,
		variant: variant,
		att:     make(map[uint64]*owTxn),
	}
}

// Name identifies the engine.
func (e *OverwriteEngine) Name() string {
	return fmt.Sprintf("shadow(overwrite-%s)", e.variant)
}

// SetJournal attaches (or with nil detaches) the structured recovery
// journal. Subsequent Recover calls emit their decisions to it.
func (e *OverwriteEngine) SetJournal(j *obs.Journal) { e.journal = j }

// Stores lists the engine's stable stores for snapshot/backup through the
// engine.Guard. The store is the thread-safe substrate, exempt from the
// kernel-state escape rule by contract.
func (e *OverwriteEngine) Stores() []*pagestore.Store { return []*pagestore.Store{e.store} }

// Load populates page p before transactions run.
func (e *OverwriteEngine) Load(p int64, data []byte) error {
	if err := e.store.Write(pagestore.PageID(p), data, 0); err != nil {
		return err
	}
	e.journal.Emit(obs.JournalRecord{Event: "load", Page: obs.JournalPage(p)})
	return nil
}

// Begin starts transaction tid.
func (e *OverwriteEngine) Begin(tid uint64) error {
	if _, ok := e.att[tid]; ok {
		return fmt.Errorf("shadoweng: transaction %d already active", tid)
	}
	t := &owTxn{writes: make(map[int64][]byte), saved: make(map[int64]int64), slot: -1}
	e.att[tid] = t
	return nil
}

// Read returns page p as seen by tid.
func (e *OverwriteEngine) Read(tid uint64, p int64) ([]byte, error) {
	if t, ok := e.att[tid]; ok && e.variant == NoUndo {
		if d, ok := t.writes[p]; ok {
			return append([]byte(nil), d...), nil
		}
	}
	return e.readHome(p)
}

func (e *OverwriteEngine) readHome(p int64) ([]byte, error) {
	data, _, err := e.store.Read(pagestore.PageID(p))
	if errors.Is(err, pagestore.ErrNotFound) {
		return nil, nil
	}
	return data, err
}

// Write updates page p for tid. No-undo buffers the new value until commit;
// no-redo saves the original to the scratch area, records the intention,
// and updates the page in place.
func (e *OverwriteEngine) Write(tid uint64, p int64, data []byte) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	if e.variant == NoUndo {
		if _, seen := t.writes[p]; !seen {
			t.order = append(t.order, p)
		}
		t.writes[p] = append([]byte(nil), data...)
		return nil
	}
	// No-redo: first touch saves the shadow and re-publishes the intent
	// record before the in-place write (write-ahead of the undo data).
	if _, saved := t.saved[p]; !saved {
		orig, err := e.readHome(p)
		if err != nil {
			return err
		}
		blk := e.nextScratch
		e.nextScratch++
		if err := e.store.Write(scratchID(blk), orig, 0); err != nil {
			return err
		}
		t.saved[p] = blk
		t.order = append(t.order, p)
		if t.slot < 0 {
			slot, err := e.freeSlot()
			if err != nil {
				return err
			}
			t.slot = slot
		}
		if err := e.writeIntent(t.slot, tid, t.pairsNoRedo()); err != nil {
			return err
		}
	}
	return e.store.Write(pagestore.PageID(p), data, 1)
}

func (t *owTxn) pairsNoRedo() [][2]int64 {
	pairs := make([][2]int64, 0, len(t.order))
	for _, p := range t.order {
		pairs = append(pairs, [2]int64{p, t.saved[p]})
	}
	return pairs
}

func (e *OverwriteEngine) freeSlot() (int, error) {
	used := map[int]bool{}
	for _, t := range e.att {
		if t.slot >= 0 {
			used[t.slot] = true
		}
	}
	for s := 0; s < intentSlots; s++ {
		if used[s] {
			continue
		}
		// The slot probe is a stable-storage read: it can hit a crashed
		// store (and is itself a sweep crash point), so the error must
		// surface instead of silently treating the slot as free.
		taken, err := e.store.Exists(intentID(s))
		if err != nil {
			return 0, err
		}
		if !taken {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w (%d concurrent transactions)", ErrBusy, intentSlots)
}

func (e *OverwriteEngine) writeIntent(slot int, tid uint64, pairs [][2]int64) error {
	buf := marshalIntent(intent{Txn: tid, Pairs: pairs})
	if len(buf) > e.store.PageSize() {
		return fmt.Errorf("shadoweng: write set too large for one intent page (%d pairs)", len(pairs))
	}
	if err := e.store.Write(intentID(slot), buf, 0); err != nil {
		return err
	}
	// Publishing an intention record is the durability decision both
	// variants hinge on, so it is the journaled event of the forward path.
	e.journal.Emit(obs.JournalRecord{Event: "intent", Engine: e.Name(), Txn: tid, N: int64(len(pairs))})
	return nil
}

// Commit finishes tid. No-undo: updated pages are written to the scratch
// ring, the intention record makes the commit durable, then the shadows are
// overwritten in place and the record cleared. No-redo: the in-place writes
// already happened; deleting the intent record is the commit point.
func (e *OverwriteEngine) Commit(tid uint64) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	if e.variant == NoRedo {
		if t.slot >= 0 {
			if err := e.store.Delete(intentID(t.slot)); err != nil {
				return fmt.Errorf("shadoweng: commit %d in doubt: %w", tid, err)
			}
		}
		delete(e.att, tid)
		e.commits++
		e.journal.Emit(obs.JournalRecord{Event: "commit", Txn: tid})
		return nil
	}
	// No-undo.
	pairs := make([][2]int64, 0, len(t.order))
	for _, p := range t.order {
		blk := e.nextScratch
		e.nextScratch++
		if err := e.store.Write(scratchID(blk), t.writes[p], 0); err != nil {
			return err
		}
		pairs = append(pairs, [2]int64{p, blk})
	}
	slot, err := e.freeSlot()
	if err != nil {
		return err
	}
	if err := e.writeIntent(slot, tid, pairs); err != nil {
		return fmt.Errorf("shadoweng: commit %d in doubt: %w", tid, err)
	}
	// Commit point passed: overwrite the shadows.
	for _, pr := range pairs {
		if err := e.store.Write(pagestore.PageID(pr[0]), t.writes[pr[0]], 1); err != nil {
			return fmt.Errorf("shadoweng: commit %d: overwrite interrupted (recovery will finish): %w", tid, err)
		}
	}
	if err := e.store.Delete(intentID(slot)); err != nil {
		return err
	}
	delete(e.att, tid)
	e.commits++
	e.journal.Emit(obs.JournalRecord{Event: "commit", Txn: tid})
	return nil
}

// Abort rolls tid back. No-undo: drop the buffer. No-redo: restore the
// saved originals and clear the intent record.
func (e *OverwriteEngine) Abort(tid uint64) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	if e.variant == NoRedo {
		for i := len(t.order) - 1; i >= 0; i-- {
			p := t.order[i]
			orig, _, err := e.store.Read(scratchID(t.saved[p]))
			if err != nil {
				return err
			}
			if err := e.store.Write(pagestore.PageID(p), orig, 0); err != nil {
				return err
			}
		}
		if t.slot >= 0 {
			if err := e.store.Delete(intentID(t.slot)); err != nil {
				return err
			}
		}
	}
	delete(e.att, tid)
	e.aborts++
	e.journal.Emit(obs.JournalRecord{Event: "abort", Txn: tid, N: int64(len(t.order))})
	return nil
}

// Crash drops all volatile state.
func (e *OverwriteEngine) Crash() {
	e.att = nil
}

// Recover completes or rolls back whatever the intention records describe.
// No-undo: redo the overwrites of committed transactions. No-redo: restore
// the originals of uncommitted transactions.
func (e *OverwriteEngine) Recover() error {
	if err := e.store.Reset(); err != nil {
		return err
	}
	for s := 0; s < intentSlots; s++ {
		buf, _, err := e.store.Read(intentID(s))
		if errors.Is(err, pagestore.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		in, err := unmarshalIntent(buf)
		if err != nil {
			return err
		}
		action := "redo"
		if e.variant == NoRedo {
			action = "restore"
		}
		e.journal.Emit(obs.JournalRecord{Event: "replay", Engine: e.Name(), Txn: in.Txn, N: int64(len(in.Pairs)), Note: action})
		for i := range in.Pairs {
			// No-redo restores in reverse save order; no-undo redoes in
			// order (both idempotent with full images).
			pr := in.Pairs[i]
			if e.variant == NoRedo {
				pr = in.Pairs[len(in.Pairs)-1-i]
			}
			data, _, err := e.store.Read(scratchID(pr[1]))
			if err != nil {
				return fmt.Errorf("shadoweng: scratch block %d lost: %w", pr[1], err)
			}
			if err := e.store.Write(pagestore.PageID(pr[0]), data, 0); err != nil {
				return err
			}
			if e.variant == NoRedo {
				e.restored++
			} else {
				e.redone++
			}
		}
		if err := e.store.Delete(intentID(s)); err != nil {
			return err
		}
	}
	e.journal.Emit(obs.JournalRecord{Event: "scan", Engine: e.Name(), N: e.redone + e.restored})
	e.att = make(map[uint64]*owTxn)
	return nil
}

// ReadCommitted reads the committed contents of page p; call when no
// transaction is active (e.g. after Recover).
func (e *OverwriteEngine) ReadCommitted(p int64) ([]byte, error) {
	return e.readHome(p)
}

// Stats reports counters.
func (e *OverwriteEngine) Stats() map[string]int64 {
	return map[string]int64{
		"commits":  e.commits,
		"aborts":   e.aborts,
		"redone":   e.redone,
		"restored": e.restored,
	}
}
