package shadoweng

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newVersion(t *testing.T) (*VersionEngine, *pagestore.Store) {
	t.Helper()
	store := pagestore.New(4096)
	e, err := NewVersion(store)
	if err != nil {
		t.Fatal(err)
	}
	return e, store
}

func TestVersionCommitAbort(t *testing.T) {
	e, _ := newVersion(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Own tentative version visible to self, not to the committed view.
	own, _ := e.Read(1, 1)
	if string(own) != "v1" {
		t.Fatalf("own read: %q", own)
	}
	com, _ := e.ReadCommitted(1)
	if string(com) != "v0" {
		t.Fatalf("committed leaked: %q", com)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	com, _ = e.ReadCommitted(1)
	if string(com) != "v1" {
		t.Fatalf("after commit: %q", com)
	}
	// The shadow copy still holds the previous version physically.
	if err := e.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(2, 1, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(2); err != nil {
		t.Fatal(err)
	}
	com, _ = e.ReadCommitted(1)
	if string(com) != "v1" {
		t.Fatalf("abort leaked: %q", com)
	}
}

func TestVersionAbortedStampNeverResurfaces(t *testing.T) {
	// An aborted transaction's stamp must not become visible when the
	// committed horizon later reaches it.
	e, _ := newVersion(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Several aborted writers push tentative stamps up.
	for i := 0; i < 5; i++ {
		tid := uint64(i + 1)
		if err := e.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tid, 1, []byte("garbage")); err != nil {
			t.Fatal(err)
		}
		if err := e.Abort(tid); err != nil {
			t.Fatal(err)
		}
	}
	// Now commit many transactions on another page to advance the horizon.
	for i := 0; i < 8; i++ {
		tid := uint64(100 + i)
		if err := e.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tid, 2, []byte(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tid); err != nil {
			t.Fatal(err)
		}
		got, _ := e.ReadCommitted(1)
		if string(got) != "v0" {
			t.Fatalf("after %d commits page 1 = %q", i+1, got)
		}
	}
}

func TestVersionCrashAtomicity(t *testing.T) {
	for budget := int64(0); budget < 8; budget++ {
		store := pagestore.New(4096)
		e, err := NewVersion(store)
		if err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 3; p++ {
			if err := e.Load(p, []byte("orig")); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Begin(1); err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 3; p++ {
			if err := e.Write(1, p, []byte("new")); err != nil {
				t.Fatal(err)
			}
		}
		store.SetWriteBudget(budget)
		commitErr := e.Commit(1)
		e.Crash()
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		news := 0
		for p := int64(0); p < 3; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil {
				t.Fatal(err)
			}
			switch string(got) {
			case "new":
				news++
			case "orig":
			default:
				t.Fatalf("budget %d: page %d = %q", budget, p, got)
			}
		}
		if news != 0 && news != 3 {
			t.Fatalf("budget %d: torn commit (%d/3)", budget, news)
		}
		if commitErr == nil && news != 3 {
			t.Fatalf("budget %d: acked commit lost", budget)
		}
		// After recovery new transactions must work and stay consistent.
		if err := e.Begin(50); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(50, 0, []byte("post")); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(50); err != nil {
			t.Fatal(err)
		}
		got, _ := e.ReadCommitted(0)
		if string(got) != "post" {
			t.Fatalf("budget %d: post-recovery commit lost: %q", budget, got)
		}
	}
}

func TestVersionDoubleSpace(t *testing.T) {
	e, store := newVersion(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	// Both versions physically present: 2 blocks + timestamp page.
	if store.Pages() != 3 {
		t.Fatalf("pages = %d, want 3 (current + shadow + ts)", store.Pages())
	}
}

func TestVersionRandomHistoryProperty(t *testing.T) {
	f := func(script []uint16) bool {
		store := pagestore.New(4096)
		e, err := NewVersion(store)
		if err != nil {
			return false
		}
		const pages = 4
		model := map[int64]string{}
		for p := int64(0); p < pages; p++ {
			v := fmt.Sprintf("init%d", p)
			if err := e.Load(p, []byte(v)); err != nil {
				return false
			}
			model[p] = v
		}
		tid := uint64(0)
		for i, op := range script {
			tid++
			if e.Begin(tid) != nil {
				return false
			}
			p := int64(op) % pages
			v := fmt.Sprintf("t%d-%d", tid, i)
			if e.Write(tid, p, []byte(v)) != nil {
				return false
			}
			if op%3 == 0 {
				if e.Abort(tid) != nil {
					return false
				}
			} else {
				if e.Commit(tid) != nil {
					return false
				}
				model[p] = v
			}
			if op%9 == 0 {
				e.Crash()
				if e.Recover() != nil {
					return false
				}
			}
		}
		for p := int64(0); p < pages; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil || string(got) != model[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
