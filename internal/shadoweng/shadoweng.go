// Package shadoweng implements functional shadow-paging recovery engines
// over a pagestore.Store:
//
//   - Engine: canonical shadow paging (System R style, the paper's Section
//     3.2). Updated pages go to fresh blocks; commit writes a new page table
//     and atomically flips a root pointer. Recovery is trivial: the root
//     always names a consistent state.
//   - OverwriteEngine: the paper's overwriting architectures (Section
//     3.2.2.2) in both flavours. No-undo writes updated pages to a scratch
//     area, commits via an intention record, then overwrites the shadows in
//     place (recovery redoes unfinished overwrites). No-redo saves the
//     originals to the scratch area before updating in place (recovery
//     restores the originals of uncommitted transactions).
//
// Every engine here is a pure, single-threaded recovery kernel: no locks,
// goroutines, or channels (simlint rule D004 enforces this), so behaviour
// is a deterministic function of the call sequence. Concurrent callers must
// go through the thread-safe wrapper in internal/engine.
package shadoweng

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

// Reserved page-id ranges in the store. Data blocks use ids >= 0.
const (
	rootPage  pagestore.PageID = -1
	ptBase    int64            = -1000000 // page-table chunks, two copies
	ptCopyGap int64            = 1000     // max chunks per page-table copy
)

func ptChunkID(copy int, chunk int) pagestore.PageID {
	return pagestore.PageID(ptBase - int64(copy)*ptCopyGap - int64(chunk))
}

// Engine is the canonical shadow-paging engine: a pure kernel, not safe
// for concurrent use on its own. Page-level isolation and locking are the
// caller's job (see internal/engine).
type Engine struct {
	store *pagestore.Store

	current   map[int64]int64 // logical page -> data block
	freeList  []int64
	nextBlock int64
	curCopy   int // which page-table copy the root points at
	gen       uint64

	att map[uint64]map[int64]int64 // tid -> logical -> new block

	commits int64
	aborts  int64

	// journal, when attached, records recovery decisions in order. A nil
	// journal is a no-op sink; it belongs to the observer and survives
	// Crash.
	journal *obs.Journal
}

// New creates a shadow-paging engine on store, writing an empty initial
// root.
func New(store *pagestore.Store) (*Engine, error) {
	e := &Engine{
		store:   store,
		current: make(map[int64]int64),
		att:     make(map[uint64]map[int64]int64),
	}
	if err := e.writePageTable(); err != nil {
		return nil, err
	}
	return e, nil
}

// Name identifies the engine.
func (e *Engine) Name() string { return "shadow(page-table)" }

// SetJournal attaches (or with nil detaches) the structured recovery
// journal. Subsequent Recover calls emit their decisions to it.
func (e *Engine) SetJournal(j *obs.Journal) { e.journal = j }

// Stores lists the engine's stable stores for snapshot/backup through the
// engine.Guard. The store is the thread-safe substrate, exempt from the
// kernel-state escape rule by contract.
func (e *Engine) Stores() []*pagestore.Store { return []*pagestore.Store{e.store} }

// Load populates logical page p before transactions run.
func (e *Engine) Load(p int64, data []byte) error {
	blk := e.allocBlock()
	if err := e.store.Write(pagestore.PageID(blk), data, 0); err != nil {
		return err
	}
	e.current[p] = blk
	return e.writePageTable()
}

// Begin starts transaction tid.
func (e *Engine) Begin(tid uint64) error {
	if _, ok := e.att[tid]; ok {
		return fmt.Errorf("shadoweng: transaction %d already active", tid)
	}
	e.att[tid] = make(map[int64]int64)
	return nil
}

// Read returns page p as seen by tid (its own writes included).
func (e *Engine) Read(tid uint64, p int64) ([]byte, error) {
	if w, ok := e.att[tid]; ok {
		if blk, ok := w[p]; ok {
			data, _, err := e.store.Read(pagestore.PageID(blk))
			return data, err
		}
	}
	return e.readCommitted(p)
}

func (e *Engine) readCommitted(p int64) ([]byte, error) {
	blk, ok := e.current[p]
	if !ok {
		return nil, nil // never written: empty page
	}
	data, _, err := e.store.Read(pagestore.PageID(blk))
	return data, err
}

// Write stores data for page p in a fresh shadow block; the current version
// is untouched until commit.
func (e *Engine) Write(tid uint64, p int64, data []byte) error {
	w, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	blk, ok := w[p]
	if !ok {
		blk = e.allocBlock()
		w[p] = blk
	}
	if err := e.store.Write(pagestore.PageID(blk), data, 0); err != nil {
		return err
	}
	e.journal.Emit(obs.JournalRecord{Event: "shadow", Txn: tid, Page: obs.JournalPage(p), N: blk})
	return nil
}

// Commit atomically installs tid's writes: the new page table is written to
// the inactive copy and the root pointer flip is the commit point.
func (e *Engine) Commit(tid uint64) error {
	w, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	old := make(map[int64]int64, len(w))
	for p, blk := range w {
		if prev, ok := e.current[p]; ok {
			old[p] = prev
		}
		e.current[p] = blk
	}
	if err := e.writePageTable(); err != nil {
		// Roll the in-memory table back; the root still points at the old
		// state, so the commit did not happen.
		for p := range w {
			if prev, ok := old[p]; ok {
				e.current[p] = prev
			} else {
				delete(e.current, p)
			}
		}
		return fmt.Errorf("shadoweng: commit %d failed: %w", tid, err)
	}
	// Old blocks become free; new blocks are now reachable.
	for _, blk := range old {
		e.freeList = append(e.freeList, blk)
	}
	delete(e.att, tid)
	e.commits++
	return nil
}

// Abort discards tid's shadow blocks.
func (e *Engine) Abort(tid uint64) error {
	w, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	for _, blk := range w {
		e.freeList = append(e.freeList, blk)
	}
	delete(e.att, tid)
	e.aborts++
	return nil
}

func (e *Engine) allocBlock() int64 {
	if n := len(e.freeList); n > 0 {
		blk := e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
		return blk
	}
	blk := e.nextBlock
	e.nextBlock++
	return blk
}

// writePageTable serializes the current mapping into the inactive copy and
// flips the root. The root write is the atomic commit point.
func (e *Engine) writePageTable() error {
	next := 1 - e.curCopy
	blob := marshalTable(e.current, e.nextBlock)
	chunkSize := e.store.PageSize()
	nChunks := 0
	for off := 0; off < len(blob) || nChunks == 0; off += chunkSize {
		end := off + chunkSize
		if end > len(blob) {
			end = len(blob)
		}
		if err := e.store.Write(ptChunkID(next, nChunks), blob[off:end], 0); err != nil {
			return err
		}
		nChunks++
	}
	root := make([]byte, 24)
	binary.BigEndian.PutUint64(root[0:], uint64(next))
	binary.BigEndian.PutUint64(root[8:], uint64(nChunks))
	e.gen++
	binary.BigEndian.PutUint64(root[16:], e.gen)
	if err := e.store.Write(rootPage, root, e.gen); err != nil {
		e.gen--
		return err
	}
	e.curCopy = next
	// The root flip is the engine's only durability decision on the
	// forward path, so it is the journal's "commit point" record: every
	// stable mutation (Load, Commit) reaches stable state through here.
	e.journal.Emit(obs.JournalRecord{Event: "flip", Engine: e.Name(), LSN: e.gen, N: int64(nChunks), Note: fmt.Sprintf("copy%d", next)})
	return nil
}

func marshalTable(m map[int64]int64, nextBlock int64) []byte {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := make([]byte, 0, 16*len(m)+16)
	var tmp [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	put(int64(len(m)))
	put(nextBlock)
	for _, k := range keys {
		put(k)
		put(m[k])
	}
	return buf
}

func unmarshalTable(buf []byte) (map[int64]int64, int64, error) {
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("shadoweng: page table too short")
	}
	n := int64(binary.BigEndian.Uint64(buf))
	nextBlock := int64(binary.BigEndian.Uint64(buf[8:]))
	if int64(len(buf)) < 16+16*n {
		return nil, 0, fmt.Errorf("shadoweng: truncated page table")
	}
	m := make(map[int64]int64, n)
	off := 16
	for i := int64(0); i < n; i++ {
		k := int64(binary.BigEndian.Uint64(buf[off:]))
		v := int64(binary.BigEndian.Uint64(buf[off+8:]))
		m[k] = v
		off += 16
	}
	return m, nextBlock, nil
}

// Crash simulates power loss: all volatile state (current table cache,
// active transactions, free list) vanishes.
func (e *Engine) Crash() {
	e.current = nil
	e.att = nil
	e.freeList = nil
}

// Recover restores the committed state from the root pointer. Unreachable
// data blocks (shadow blocks of transactions lost in the crash) are
// reclaimed onto the free list.
func (e *Engine) Recover() error {
	if err := e.store.Reset(); err != nil {
		return err
	}
	root, gen, err := e.store.Read(rootPage)
	if err != nil {
		return fmt.Errorf("shadoweng: no root: %w", err)
	}
	copyIdx := int(binary.BigEndian.Uint64(root[0:]))
	nChunks := int(binary.BigEndian.Uint64(root[8:]))
	var blob []byte
	for c := 0; c < nChunks; c++ {
		chunk, _, err := e.store.Read(ptChunkID(copyIdx, c))
		if err != nil {
			return fmt.Errorf("shadoweng: page-table chunk %d: %w", c, err)
		}
		blob = append(blob, chunk...)
	}
	table, nextBlock, err := unmarshalTable(blob)
	if err != nil {
		return err
	}
	e.current = table
	e.curCopy = copyIdx
	e.gen = gen
	e.nextBlock = nextBlock
	e.journal.Emit(obs.JournalRecord{Event: "root", Engine: e.Name(), LSN: gen, N: int64(len(table)), Note: fmt.Sprintf("copy%d", copyIdx)})
	e.att = make(map[uint64]map[int64]int64)
	// Garbage-collect unreachable blocks.
	reachable := make(map[int64]bool, len(table))
	for _, blk := range table {
		reachable[blk] = true
	}
	e.freeList = nil
	for blk := int64(0); blk < nextBlock; blk++ {
		if !reachable[blk] {
			e.freeList = append(e.freeList, blk)
		}
	}
	e.journal.Emit(obs.JournalRecord{Event: "gc", Engine: e.Name(), N: int64(len(e.freeList))})
	return nil
}

// ReadCommitted reads the committed contents of page p.
func (e *Engine) ReadCommitted(p int64) ([]byte, error) {
	return e.readCommitted(p)
}

// Stats reports commit/abort counters and table size.
func (e *Engine) Stats() map[string]int64 {
	return map[string]int64{
		"commits": e.commits,
		"aborts":  e.aborts,
		"pages":   int64(len(e.current)),
		"free":    int64(len(e.freeList)),
	}
}
