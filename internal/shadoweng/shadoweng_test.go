package shadoweng

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newShadow(t *testing.T) (*Engine, *pagestore.Store) {
	t.Helper()
	store := pagestore.New(4096)
	e, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	return e, store
}

func TestShadowCommitVisible(t *testing.T) {
	e, _ := newShadow(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Committed state unchanged until commit.
	got, err := e.ReadCommitted(1)
	if err != nil || string(got) != "v0" {
		t.Fatalf("pre-commit state: %q %v", got, err)
	}
	// The transaction sees its own write.
	own, err := e.Read(1, 1)
	if err != nil || string(own) != "v1" {
		t.Fatalf("own read: %q %v", own, err)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	got, _ = e.ReadCommitted(1)
	if string(got) != "v1" {
		t.Fatalf("post-commit: %q", got)
	}
}

func TestShadowAbortInvisible(t *testing.T) {
	e, _ := newShadow(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(1); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "v0" {
		t.Fatalf("abort leaked: %q", got)
	}
}

func TestShadowCrashRecovery(t *testing.T) {
	e, _ := newShadow(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(2, 1, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "committed" {
		t.Fatalf("after recovery: %q", got)
	}
}

func TestShadowCommitAtomicUnderCrash(t *testing.T) {
	// Cut power at every possible write during commit; the multi-page
	// transaction must be all-or-nothing.
	for budget := int64(0); budget < 8; budget++ {
		e, store := newShadow(t)
		for p := int64(0); p < 3; p++ {
			if err := e.Load(p, []byte("orig")); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Begin(1); err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 3; p++ {
			if err := e.Write(1, p, []byte("new")); err != nil {
				t.Fatal(err)
			}
		}
		store.SetWriteBudget(budget)
		commitErr := e.Commit(1)
		e.Crash()
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		news := 0
		for p := int64(0); p < 3; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil {
				t.Fatal(err)
			}
			switch string(got) {
			case "new":
				news++
			case "orig":
			default:
				t.Fatalf("budget %d: page %d = %q", budget, p, got)
			}
		}
		if news != 0 && news != 3 {
			t.Fatalf("budget %d: torn commit (%d/3 new)", budget, news)
		}
		if commitErr == nil && news != 3 {
			t.Fatalf("budget %d: acked commit lost", budget)
		}
	}
}

func TestShadowBlockReuse(t *testing.T) {
	e, _ := newShadow(t)
	if err := e.Load(1, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tid := uint64(i + 1)
		if err := e.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tid, 1, []byte(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tid); err != nil {
			t.Fatal(err)
		}
	}
	// One live page: block usage must not grow without bound.
	s := e.Stats()
	if s["free"] == 0 {
		t.Fatal("superseded shadow blocks never freed")
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "v10" {
		t.Fatalf("after recover: %q", got)
	}
	if e.Stats()["free"] == 0 {
		t.Fatal("recovery GC reclaimed nothing")
	}
}

func overwriteEngines(t *testing.T) map[string]*OverwriteEngine {
	t.Helper()
	return map[string]*OverwriteEngine{
		"no-undo": NewOverwrite(pagestore.New(4096), NoUndo),
		"no-redo": NewOverwrite(pagestore.New(4096), NoRedo),
	}
}

func TestOverwriteCommitAbort(t *testing.T) {
	for name, e := range overwriteEngines(t) {
		t.Run(name, func(t *testing.T) {
			if err := e.Load(1, []byte("v0")); err != nil {
				t.Fatal(err)
			}
			if err := e.Begin(1); err != nil {
				t.Fatal(err)
			}
			if err := e.Write(1, 1, []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if got, _ := e.Read(1, 1); string(got) != "v1" {
				t.Fatalf("own read: %q", got)
			}
			if err := e.Commit(1); err != nil {
				t.Fatal(err)
			}
			if got, _ := e.ReadCommitted(1); string(got) != "v1" {
				t.Fatalf("commit lost: %q", got)
			}
			if err := e.Begin(2); err != nil {
				t.Fatal(err)
			}
			if err := e.Write(2, 1, []byte("bad")); err != nil {
				t.Fatal(err)
			}
			if err := e.Abort(2); err != nil {
				t.Fatal(err)
			}
			if got, _ := e.ReadCommitted(1); string(got) != "v1" {
				t.Fatalf("abort leaked: %q", got)
			}
		})
	}
}

func TestOverwriteCrashAtomicity(t *testing.T) {
	for _, variant := range []Variant{NoUndo, NoRedo} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			for budget := int64(0); budget < 10; budget++ {
				store := pagestore.New(4096)
				e := NewOverwrite(store, variant)
				for p := int64(0); p < 3; p++ {
					if err := e.Load(p, []byte("orig")); err != nil {
						t.Fatal(err)
					}
				}
				if err := e.Begin(1); err != nil {
					t.Fatal(err)
				}
				store.SetWriteBudget(budget)
				failed := false
				for p := int64(0); p < 3; p++ {
					if err := e.Write(1, p, []byte("new")); err != nil {
						failed = true
						break
					}
				}
				var commitErr error
				if !failed {
					commitErr = e.Commit(1)
				} else {
					commitErr = fmt.Errorf("write failed")
				}
				e.Crash()
				if err := e.Recover(); err != nil {
					t.Fatal(err)
				}
				news := 0
				for p := int64(0); p < 3; p++ {
					got, err := e.ReadCommitted(p)
					if err != nil {
						t.Fatal(err)
					}
					switch string(got) {
					case "new":
						news++
					case "orig":
					default:
						t.Fatalf("budget %d: page %d = %q", budget, p, got)
					}
				}
				if news != 0 && news != 3 {
					t.Fatalf("budget %d: torn transaction (%d/3)", budget, news)
				}
				if commitErr == nil && news != 3 {
					t.Fatalf("budget %d: acked commit lost", budget)
				}
			}
		})
	}
}

func TestOverwriteRecoveryRedoesCommitted(t *testing.T) {
	// No-undo: crash right after the intention record, before overwrites.
	store := pagestore.New(4096)
	e := NewOverwrite(store, NoUndo)
	if err := e.Load(1, []byte("orig")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Budget: 1 scratch write + 1 intent write, then power fails on the
	// home overwrite.
	store.SetWriteBudget(2)
	if err := e.Commit(1); err == nil {
		t.Fatal("commit should report interrupted overwrite")
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "new" {
		t.Fatalf("committed intention not redone: %q", got)
	}
	if e.Stats()["redone"] == 0 {
		t.Fatal("no redo recorded")
	}
}

func TestOverwriteNoRedoRestoresUncommitted(t *testing.T) {
	store := pagestore.New(4096)
	e := NewOverwrite(store, NoRedo)
	if err := e.Load(1, []byte("orig")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// In-place write is already on disk.
	if got, _ := e.ReadCommitted(1); string(got) != "dirty" {
		t.Fatalf("in-place write missing: %q", got)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "orig" {
		t.Fatalf("uncommitted in-place write not restored: %q", got)
	}
	if e.Stats()["restored"] == 0 {
		t.Fatal("no restore recorded")
	}
}

func TestIntentMarshalRoundTrip(t *testing.T) {
	f := func(txn uint64, pairsRaw []int64) bool {
		in := intent{Txn: txn}
		for i := 0; i+1 < len(pairsRaw); i += 2 {
			in.Pairs = append(in.Pairs, [2]int64{pairsRaw[i], pairsRaw[i+1]})
		}
		out, err := unmarshalIntent(marshalIntent(in))
		if err != nil || out.Txn != in.Txn || len(out.Pairs) != len(in.Pairs) {
			return false
		}
		for i := range in.Pairs {
			if out.Pairs[i] != in.Pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowRandomHistoryProperty(t *testing.T) {
	// Property: after any sequence of committed/aborted transactions and a
	// crash, the canonical shadow engine equals the committed model.
	f := func(script []uint16) bool {
		store := pagestore.New(4096)
		e, err := New(store)
		if err != nil {
			return false
		}
		const pages = 5
		model := map[int64]string{}
		for p := int64(0); p < pages; p++ {
			v := fmt.Sprintf("init%d", p)
			if err := e.Load(p, []byte(v)); err != nil {
				return false
			}
			model[p] = v
		}
		tid := uint64(0)
		for i, op := range script {
			tid++
			if e.Begin(tid) != nil {
				return false
			}
			p := int64(op) % pages
			v := fmt.Sprintf("t%d-%d", tid, i)
			if e.Write(tid, p, []byte(v)) != nil {
				return false
			}
			if op%3 == 0 {
				if e.Abort(tid) != nil {
					return false
				}
			} else {
				if e.Commit(tid) != nil {
					return false
				}
				model[p] = v
			}
		}
		e.Crash()
		if e.Recover() != nil {
			return false
		}
		for p := int64(0); p < pages; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil || string(got) != model[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
