package shadoweng

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

// VersionEngine implements the version-selection shadow architecture
// (Section 3.2.2.1): every logical page owns two physically adjacent blocks
// holding the current and shadow versions, each stamped with the commit
// timestamp of the transaction that wrote it. A read fetches both blocks and
// selects the newer valid one — no page table, no indirection. An update
// overwrites the *older* block; the commit record (a timestamp page) makes
// the new versions current atomically.
//
// The engine pays the architecture's documented price: double the disk
// space, and both blocks transferred on every read.
type VersionEngine struct {
	store *pagestore.Store

	// committedTS is the highest committed timestamp; versions stamped
	// above it belong to uncommitted transactions and are ignored by reads.
	committedTS uint64
	nextTS      uint64

	att map[uint64]*vsTxn

	commits, aborts int64

	// journal, when attached, records recovery decisions in order (nil is
	// a no-op sink; survives Crash).
	journal *obs.Journal
}

type vsTxn struct {
	ts      uint64        // tentative timestamp for this transaction
	touched map[int64]int // logical page -> block side written (0/1)
	order   []int64
}

// Block ids: logical page p owns blocks 2p and 2p+1 in a dedicated positive
// range offset; the timestamp word of the store is the version stamp.
const vsTSPage pagestore.PageID = -5000000

func vsBlock(p int64, side int) pagestore.PageID {
	return pagestore.PageID(2*p + int64(side))
}

// NewVersion creates a version-selection engine on store. The store must be
// dedicated to this engine (it owns the whole block space).
func NewVersion(store *pagestore.Store) (*VersionEngine, error) {
	e := &VersionEngine{
		store:  store,
		nextTS: 1,
		att:    make(map[uint64]*vsTxn),
	}
	if err := e.writeTS(0); err != nil {
		return nil, err
	}
	return e, nil
}

// Name identifies the engine.
func (e *VersionEngine) Name() string { return "shadow(version-selection)" }

// SetJournal attaches (or with nil detaches) the structured recovery
// journal. Subsequent Recover calls emit their decisions to it.
func (e *VersionEngine) SetJournal(j *obs.Journal) { e.journal = j }

// Stores lists the engine's stable stores for snapshot/backup through the
// engine.Guard. The store is the thread-safe substrate, exempt from the
// kernel-state escape rule by contract.
func (e *VersionEngine) Stores() []*pagestore.Store { return []*pagestore.Store{e.store} }

func (e *VersionEngine) writeTS(ts uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ts)
	if err := e.store.Write(vsTSPage, buf[:], ts); err != nil {
		return err
	}
	e.committedTS = ts
	// Bumping the committed-timestamp page is this engine's atomic commit
	// point, so it is the journaled durability decision on the forward path.
	e.journal.Emit(obs.JournalRecord{Event: "flip", Engine: e.Name(), LSN: ts})
	return nil
}

// Load populates page p before transactions run (timestamp 0 on side 0).
func (e *VersionEngine) Load(p int64, data []byte) error {
	if err := e.store.Write(vsBlock(p, 0), data, 0); err != nil {
		return err
	}
	e.journal.Emit(obs.JournalRecord{Event: "load", Page: obs.JournalPage(p)})
	return nil
}

// Begin starts transaction tid.
func (e *VersionEngine) Begin(tid uint64) error {
	if _, ok := e.att[tid]; ok {
		return fmt.Errorf("shadoweng: transaction %d already active", tid)
	}
	e.nextTS++
	e.att[tid] = &vsTxn{ts: e.nextTS, touched: make(map[int64]int)}
	return nil
}

// selectVersion fetches both blocks of p and picks the newest whose stamp is
// visible (committed, or belonging to the asking transaction).
func (e *VersionEngine) selectVersion(p int64, ownTS uint64) ([]byte, error) {
	var best []byte
	bestTS := uint64(0)
	found := false
	for side := 0; side < 2; side++ {
		data, ts, err := e.store.Read(vsBlock(p, side))
		if errors.Is(err, pagestore.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if ts > e.committedTS && ts != ownTS {
			continue // uncommitted version of another transaction
		}
		if !found || ts > bestTS {
			best, bestTS, found = data, ts, true
		}
	}
	if !found {
		return nil, nil
	}
	return best, nil
}

// Read returns page p as seen by tid.
func (e *VersionEngine) Read(tid uint64, p int64) ([]byte, error) {
	t, ok := e.att[tid]
	if !ok {
		return nil, fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	return e.selectVersion(p, t.ts)
}

// Write stores data in the older block of p's pair, stamped with the
// transaction's tentative timestamp; the current version is untouched.
func (e *VersionEngine) Write(tid uint64, p int64, data []byte) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	side, touched := t.touched[p]
	if !touched {
		side = e.olderSide(p, t.ts)
		t.touched[p] = side
		t.order = append(t.order, p)
	}
	if err := e.store.Write(vsBlock(p, side), data, t.ts); err != nil {
		return err
	}
	e.journal.Emit(obs.JournalRecord{Event: "shadow", Txn: tid, Page: obs.JournalPage(p), N: int64(side)})
	return nil
}

// olderSide picks the block to overwrite: a missing block, a garbage block
// (tentative stamp above the committed horizon, left by an aborted or
// crashed transaction), or the side with the older committed stamp — never
// the current committed version.
func (e *VersionEngine) olderSide(p int64, ownTS uint64) int {
	// rank: lower is more overwritable.
	rank := func(side int) uint64 {
		_, stamp, err := e.store.Read(vsBlock(p, side))
		if err != nil {
			return 0 // missing: best victim
		}
		if stamp > e.committedTS && stamp != ownTS {
			return 1 // garbage from an aborted/crashed transaction
		}
		return 2 + stamp // committed: older stamp loses
	}
	if rank(0) <= rank(1) {
		return 0
	}
	return 1
}

// Commit publishes tid's versions: bumping the committed-timestamp page to
// the transaction's stamp is the atomic commit point. Version-selection
// requires timestamps to become visible in order, so commits are admitted
// only when no older uncommitted stamp exists; with 2PL above this engine
// that is always true.
func (e *VersionEngine) Commit(tid uint64) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	// All of this transaction's blocks are already on disk with stamp t.ts.
	// Making t.ts visible must not leak other transactions' tentative
	// stamps below it: restamp to one above the committed horizon.
	target := e.committedTS + 1
	if t.ts != target {
		for _, p := range t.order {
			side := t.touched[p]
			data, _, err := e.store.Read(vsBlock(p, side))
			if err != nil {
				return err
			}
			if err := e.store.Write(vsBlock(p, side), data, target); err != nil {
				return err
			}
		}
		t.ts = target
	}
	if err := e.writeTS(target); err != nil {
		return fmt.Errorf("shadoweng: commit %d in doubt: %w", tid, err)
	}
	delete(e.att, tid)
	e.commits++
	e.journal.Emit(obs.JournalRecord{Event: "commit", Txn: tid, LSN: target})
	return nil
}

// Abort discards tid's tentative blocks so their stamps can never collide
// with a future committed timestamp.
func (e *VersionEngine) Abort(tid uint64) error {
	t, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("shadoweng: transaction %d not active", tid)
	}
	for _, p := range t.order {
		if err := e.store.Delete(vsBlock(p, t.touched[p])); err != nil {
			return err
		}
	}
	delete(e.att, tid)
	e.aborts++
	e.journal.Emit(obs.JournalRecord{Event: "abort", Txn: tid, N: int64(len(t.order))})
	return nil
}

// Crash drops volatile state.
func (e *VersionEngine) Crash() {
	e.att = nil
}

// Recover reads the committed-timestamp page; version selection then
// resolves every page to its newest committed version. Tentative stamps
// above the horizon are garbage that future writes overwrite.
func (e *VersionEngine) Recover() error {
	if err := e.store.Reset(); err != nil {
		return err
	}
	buf, ts, err := e.store.Read(vsTSPage)
	if err != nil {
		return fmt.Errorf("shadoweng: no timestamp page: %w", err)
	}
	stored := binary.BigEndian.Uint64(buf)
	if stored != ts {
		return fmt.Errorf("shadoweng: timestamp page corrupt (%d vs %d)", stored, ts)
	}
	e.committedTS = stored
	e.nextTS = stored + 1
	e.journal.Emit(obs.JournalRecord{Event: "root", Engine: e.Name(), LSN: stored})
	e.att = make(map[uint64]*vsTxn)
	// Scrub tentative stamps left by transactions lost in the crash: they
	// must not collide with the stamps future commits will publish.
	var scrubbed int64
	for _, id := range e.store.Keys() {
		if id < 0 {
			continue // metadata
		}
		_, stamp, err := e.store.Read(id)
		if err != nil {
			return err
		}
		if stamp > stored {
			if err := e.store.Delete(id); err != nil {
				return err
			}
			scrubbed++
		}
	}
	e.journal.Emit(obs.JournalRecord{Event: "gc", Engine: e.Name(), N: scrubbed})
	return nil
}

// ReadCommitted resolves the committed version of page p.
func (e *VersionEngine) ReadCommitted(p int64) ([]byte, error) {
	return e.selectVersion(p, 0)
}

// Stats reports counters.
func (e *VersionEngine) Stats() map[string]int64 {
	return map[string]int64{"commits": e.commits, "aborts": e.aborts}
}
