package machine

import "testing"

func TestAbortFracFinishesLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.AbortFrac = 0.5
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted != cfg.NumTxns {
		t.Fatalf("finished %d+%d of %d", res.Committed, res.Aborted, cfg.NumTxns)
	}
	if res.Aborted == 0 {
		t.Fatal("no transactions aborted at 50% abort rate")
	}
	if res.Committed == 0 {
		t.Fatal("every transaction aborted at 50% abort rate")
	}
}

func TestAbortFracZeroMeansNoAborts(t *testing.T) {
	res, err := Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Fatalf("aborted = %d with AbortFrac 0", res.Aborted)
	}
}

func TestAbortFracValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.AbortFrac = 1.5
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("abort fraction > 1 accepted")
	}
	cfg.AbortFrac = -0.1
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("negative abort fraction accepted")
	}
}

func TestAbortedTxnsExcludedFromCompletion(t *testing.T) {
	// Completion times are defined over committing transactions; an
	// all-but-abort load must still report a sane (committed-only) mean.
	cfg := smallConfig()
	cfg.AbortFrac = 0.3
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCompletionMs <= 0 {
		t.Fatalf("completion = %v", res.MeanCompletionMs)
	}
}
