package machine

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// smallConfig is a fast configuration for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumTxns = 10
	cfg.Workload.MaxPages = 60
	return cfg
}

func TestBareMachineRunsToCompletion(t *testing.T) {
	res, err := Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.ExecPerPageMs <= 0 || res.MeanCompletionMs <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	if res.PagesProcessed <= 0 {
		t.Fatal("no pages processed")
	}
}

func TestBareMachineDeterministic(t *testing.T) {
	a, err := Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.PagesProcessed != b.PagesProcessed ||
		a.ExecPerPageMs != b.ExecPerPageMs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestPagesProcessedCountsReadsAndWrites(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	reads := workload.TotalReads(m.pending)
	writes := workload.TotalWrites(m.pending)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesProcessed != int64(reads+writes) {
		t.Fatalf("pages processed = %d, want %d reads + %d writes",
			res.PagesProcessed, reads, writes)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	cfg := smallConfig()
	random, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload.Sequential = true
	seq, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ExecPerPageMs >= random.ExecPerPageMs {
		t.Fatalf("sequential (%.2f) not faster than random (%.2f)",
			seq.ExecPerPageMs, random.ExecPerPageMs)
	}
}

func TestParallelDisksHelpSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload.Sequential = true
	conv, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ParallelDisks = true
	par, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if par.ExecPerPageMs >= conv.ExecPerPageMs {
		t.Fatalf("parallel-sequential (%.2f) not faster than conventional-sequential (%.2f)",
			par.ExecPerPageMs, conv.ExecPerPageMs)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.QueryProcessors = 0
	if _, err := Run(bad, nil); err == nil {
		t.Error("zero QPs accepted")
	}
	bad = DefaultConfig()
	bad.MPL = 0
	if _, err := Run(bad, nil); err == nil {
		t.Error("zero MPL accepted")
	}
	bad = DefaultConfig()
	bad.DataDisks = 0
	if _, err := Run(bad, nil); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	p := newPlacement(2, 48, 24000, 0)
	if p.PhysPages() < 24000 {
		t.Fatalf("phys pages = %d", p.PhysPages())
	}
	seen := map[[2]int]bool{}
	for phys := 0; phys < 24000; phys++ {
		d, local := p.Locate(phys)
		if d < 0 || d >= 2 {
			t.Fatalf("disk %d", d)
		}
		key := [2]int{d, local}
		if seen[key] {
			t.Fatalf("phys %d collides at disk %d local %d", phys, d, local)
		}
		seen[key] = true
	}
	// Sequential pages within a cylinder stay on one disk.
	d0, l0 := p.Locate(0)
	d1, l1 := p.Locate(1)
	if d0 != d1 || l1 != l0+1 {
		t.Fatal("within-cylinder pages not contiguous on one disk")
	}
	// Cylinders stripe round-robin.
	d48, _ := p.Locate(48)
	if d48 == d0 {
		t.Fatal("consecutive cylinders on same disk")
	}
}

func TestRingAllocatorStaysOnDisk(t *testing.T) {
	p := newPlacement(2, 48, 24000, 4*48*2)
	start := p.ExtraRegionStart()
	r := NewRingAllocator(p, start, 4)
	for d := 0; d < 2; d++ {
		for i := 0; i < 10; i++ {
			phys := r.Next(d)
			if got := p.DiskOf(phys); got != d {
				t.Fatalf("scratch page %d for disk %d landed on disk %d", phys, d, got)
			}
			if phys < 24000 {
				t.Fatalf("scratch page %d inside database region", phys)
			}
		}
	}
	// The ring wraps.
	r2 := NewRingAllocator(p, start, 1)
	first := r2.Next(0)
	for i := 0; i < r2.Capacity()-1; i++ {
		r2.Next(0)
	}
	if r2.Next(0) != first {
		t.Fatal("ring did not wrap to first page")
	}
}

func TestLockConflictSerializesWriters(t *testing.T) {
	// Two transactions updating the same page must not overlap.
	cfg := DefaultConfig()
	cfg.NumTxns = 2
	cfg.MPL = 2
	// Hand-build the machine so we control the workload precisely.
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := workload.PageID(100)
	m.pending = []*workload.Txn{
		{ID: 0, Reads: []workload.PageID{shared, 101}, Writes: map[workload.PageID]bool{shared: true}},
		{ID: 1, Reads: []workload.PageID{shared, 102}, Writes: map[workload.PageID]bool{shared: true}},
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.LockWaits == 0 {
		t.Fatal("expected a lock wait between conflicting writers")
	}
}

func TestSharedLocksRunConcurrently(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTxns = 2
	cfg.MPL = 2
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.pending = []*workload.Txn{
		{ID: 0, Reads: []workload.PageID{100, 101}, Writes: map[workload.PageID]bool{}},
		{ID: 1, Reads: []workload.PageID{100, 102}, Writes: map[workload.PageID]bool{}},
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LockWaits != 0 {
		t.Fatalf("shared readers waited: %d waits", res.LockWaits)
	}
}

func TestStandardPlanShape(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := &workload.Txn{
		ID:     0,
		Reads:  []workload.PageID{5, 6, 7},
		Writes: map[workload.PageID]bool{6: true},
	}
	at := &ActiveTxn{T: tx}
	plan := m.StandardPlan(at)
	if len(plan) != 3 {
		t.Fatalf("plan length %d", len(plan))
	}
	if plan[1].CPU != cfg.CPUPerPage+cfg.CPUPerUpdate {
		t.Fatalf("update CPU = %v", plan[1].CPU)
	}
	if plan[0].CPU != cfg.CPUPerPage {
		t.Fatalf("read CPU = %v", plan[0].CPU)
	}
	if !plan[1].Update || plan[0].Update || plan[2].Update {
		t.Fatal("update flags wrong")
	}
	if plan[1].WriteTo != 6 || plan[1].PhysPages[0] != 6 {
		t.Fatal("identity placement wrong")
	}
}

func TestSubmitPhysSplitsAcrossDisks(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	// Pages 0 and 48 are on different disks (cylinder striping).
	m.SubmitPhys([]int{0, 48}, false, func() { called = true })
	m.eng.Run()
	if !called {
		t.Fatal("done not called")
	}
	if m.disks[0].Accesses() != 1 || m.disks[1].Accesses() != 1 {
		t.Fatalf("accesses = %d,%d", m.disks[0].Accesses(), m.disks[1].Accesses())
	}
}

func TestSubmitPhysEmptyCallsDone(t *testing.T) {
	m, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	m.SubmitPhys(nil, false, func() { called = true })
	if !called {
		t.Fatal("done not called for empty request")
	}
}

func TestCompletionIncludesWriteback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTxns = 1
	cfg.MPL = 1
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.pending = []*workload.Txn{
		{ID: 0, Reads: []workload.PageID{10}, Writes: map[workload.PageID]bool{10: true}},
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// read (~seek+lat+xfer) + cpu 60ms + write: must exceed CPU alone.
	if res.MeanCompletionMs < cfg.CPUPerPage.ToMs() {
		t.Fatalf("completion %.2fms too small", res.MeanCompletionMs)
	}
	if res.PagesProcessed != 2 {
		t.Fatalf("pages processed = %d (1 read + 1 write)", res.PagesProcessed)
	}
}

func TestWindowLimitsFrames(t *testing.T) {
	cfg := smallConfig()
	cfg.PrefetchWindow = 2
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCacheUsed > float64(cfg.MPL*2)+0.5 {
		t.Fatalf("mean cache used %.1f exceeds MPL*window", res.MeanCacheUsed)
	}
}

func TestAuxDiskIndependent(t *testing.T) {
	m, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	aux := m.NewAuxDisk("log0", 10)
	done := false
	aux.Submit(&disk.Request{Pages: []int{0}, Write: true, Done: func() { done = true }})
	m.eng.Run()
	if !done {
		t.Fatal("aux disk write never completed")
	}
	if m.disks[0].Accesses() != 0 && m.disks[1].Accesses() != 0 {
		t.Fatal("aux disk write hit a data disk")
	}
}

func TestHoldAndReleaseAdmissions(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	quiesced := false
	// Before anything runs, the machine is trivially quiescent.
	m.OnQuiescent(func() { quiesced = true })
	if !quiesced {
		t.Fatal("OnQuiescent not immediate on an idle machine")
	}
	// Drain mid-run: hold admissions at 200ms, note quiescence, release.
	var drainAt, resumeAt sim.Time
	m.Eng().After(sim.Ms(200), func() {
		m.HoldAdmissions()
		m.OnQuiescent(func() {
			drainAt = m.Eng().Now()
			m.ReleaseAdmissions()
			resumeAt = m.Eng().Now()
		})
	})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != cfg.NumTxns {
		t.Fatalf("committed = %d", res.Committed)
	}
	if drainAt <= sim.Ms(200) {
		t.Fatalf("drain at %v, expected after the hold", drainAt)
	}
	if resumeAt != drainAt {
		t.Fatalf("release should be immediate at quiescence: %v vs %v", resumeAt, drainAt)
	}
	if !m.Finished() {
		t.Fatal("Finished() false after the run")
	}
}

func TestReleaseWithoutHoldIsNoop(t *testing.T) {
	m, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.ReleaseAdmissions() // must not panic or admit anything
	if len(m.active) != 0 {
		t.Fatal("release admitted transactions without a hold")
	}
}
