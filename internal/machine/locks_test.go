package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func txnWith(id int, reads []workload.PageID, writes ...workload.PageID) *ActiveTxn {
	w := map[workload.PageID]bool{}
	for _, p := range writes {
		w[p] = true
	}
	return &ActiveTxn{T: &workload.Txn{ID: id, Reads: reads, Writes: w}}
}

func TestLockTableSharedCompatible(t *testing.T) {
	lt := newLockTable()
	t1 := txnWith(1, []workload.PageID{5})
	t2 := txnWith(2, []workload.PageID{5})
	g1, g2 := false, false
	lt.AcquireAll(t1, func() { g1 = true })
	lt.AcquireAll(t2, func() { g2 = true })
	if !g1 || !g2 {
		t.Fatalf("shared readers blocked: %v %v", g1, g2)
	}
	if lt.Waits() != 0 {
		t.Fatalf("waits = %d", lt.Waits())
	}
}

func TestLockTableWriterExcludes(t *testing.T) {
	lt := newLockTable()
	t1 := txnWith(1, []workload.PageID{5}, 5)
	t2 := txnWith(2, []workload.PageID{5}, 5)
	g1, g2 := false, false
	lt.AcquireAll(t1, func() { g1 = true })
	lt.AcquireAll(t2, func() { g2 = true })
	if !g1 {
		t.Fatal("first writer blocked")
	}
	if g2 {
		t.Fatal("second writer granted concurrently")
	}
	lt.ReleaseAll(t1)
	if !g2 {
		t.Fatal("waiter not granted at release")
	}
	if lt.Waits() != 1 {
		t.Fatalf("waits = %d", lt.Waits())
	}
}

func TestLockTableFIFOWithSharedBatch(t *testing.T) {
	lt := newLockTable()
	w := txnWith(1, []workload.PageID{9}, 9)
	r1 := txnWith(2, []workload.PageID{9})
	r2 := txnWith(3, []workload.PageID{9})
	var grants []int
	lt.AcquireAll(w, func() { grants = append(grants, 1) })
	lt.AcquireAll(r1, func() { grants = append(grants, 2) })
	lt.AcquireAll(r2, func() { grants = append(grants, 3) })
	lt.ReleaseAll(w)
	// Both shared waiters are granted together after the writer leaves.
	if len(grants) != 3 || grants[1] != 2 || grants[2] != 3 {
		t.Fatalf("grants = %v", grants)
	}
}

func TestLockTableWriterWaitsBehindReaders(t *testing.T) {
	lt := newLockTable()
	r := txnWith(1, []workload.PageID{7})
	w := txnWith(2, []workload.PageID{7}, 7)
	rGranted, wGranted := false, false
	lt.AcquireAll(r, func() { rGranted = true })
	lt.AcquireAll(w, func() { wGranted = true })
	if !rGranted || wGranted {
		t.Fatalf("states: r=%v w=%v", rGranted, wGranted)
	}
	lt.ReleaseAll(r)
	if !wGranted {
		t.Fatal("writer not granted after reader release")
	}
}

func TestLockTableMultiPageOrderedAcquisition(t *testing.T) {
	lt := newLockTable()
	// T1 takes 1..3; T2 wants 2..4 and must wait on 2.
	t1 := txnWith(1, []workload.PageID{1, 2, 3}, 2)
	t2 := txnWith(2, []workload.PageID{2, 3, 4}, 2)
	g1, g2 := false, false
	lt.AcquireAll(t1, func() { g1 = true })
	lt.AcquireAll(t2, func() { g2 = true })
	if !g1 || g2 {
		t.Fatalf("states: %v %v", g1, g2)
	}
	lt.ReleaseAll(t1)
	if !g2 {
		t.Fatal("t2 never granted")
	}
	lt.ReleaseAll(t2)
	if len(lt.locks) != 0 {
		t.Fatalf("lock table leaked %d entries", len(lt.locks))
	}
}

func TestLockTableNoDeadlockProperty(t *testing.T) {
	// Ordered acquisition must always complete: any set of transactions
	// over any page sets eventually all get granted when finished txns
	// release in any order.
	f := func(sets [][]uint8) bool {
		lt := newLockTable()
		var txns []*ActiveTxn
		granted := map[int]bool{}
		for i, set := range sets {
			if len(set) == 0 {
				continue
			}
			pages := make([]workload.PageID, 0, len(set))
			seen := map[workload.PageID]bool{}
			for _, s := range set {
				p := workload.PageID(s % 16)
				if !seen[p] {
					pages = append(pages, p)
					seen[p] = true
				}
			}
			tx := txnWith(i, pages, pages[0])
			txns = append(txns, tx)
			i := i
			lt.AcquireAll(tx, func() { granted[i] = true })
		}
		// Release granted transactions until everything drains.
		for safety := 0; safety < len(txns)+1; safety++ {
			progressed := false
			for _, tx := range txns {
				if granted[tx.T.ID] && tx.lockedPages != nil {
					lt.ReleaseAll(tx)
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		for _, tx := range txns {
			if !granted[tx.T.ID] {
				return false
			}
		}
		return len(lt.locks) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBaseModelDefaults(t *testing.T) {
	m, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &Base{}
	b.Attach(m)
	if b.Name() != "bare" {
		t.Fatalf("name = %q", b.Name())
	}
	called := 0
	at := &ActiveTxn{T: &workload.Txn{Reads: []workload.PageID{1}, Writes: map[workload.PageID]bool{}}}
	pr := &PlannedRead{}
	b.BeforeRead(at, pr, func() { called++ })
	b.UpdateReady(at, pr, func() { called++ })
	b.BeforeCommit(at, func() { called++ })
	b.AfterCommit(at, func() { called++ })
	b.OnCachePressure(at)
	if called != 4 {
		t.Fatalf("base hooks did not pass through: %d", called)
	}
	if b.Stats() != nil {
		t.Fatal("base stats should be nil")
	}
}
