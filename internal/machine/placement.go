package machine

import (
	"fmt"

	"repro/internal/disk"
)

// Placement maps physical page numbers onto the data disks. Physical pages
// are laid out cylinder-major and cylinders are striped round-robin across
// the disks, so a sequential scan alternates disks one cylinder at a time
// while staying physically clustered on each.
//
// Physical pages [0, DBPages) hold the database proper; recovery models may
// reserve extra pages above DBPages (scratch areas, differential files,
// shadow copies) via the SpaceRequirer interface.
type Placement struct {
	nDisks      int
	pagesPerCyl int
	dbPages     int
	physPages   int // dbPages + model extras, rounded up to whole cylinders
}

func newPlacement(nDisks, pagesPerCyl, dbPages, extraPhys int) Placement {
	phys := dbPages + extraPhys
	// Round up so every disk has the same cylinder count.
	cylsTotal := (phys + pagesPerCyl - 1) / pagesPerCyl
	if rem := cylsTotal % nDisks; rem != 0 {
		cylsTotal += nDisks - rem
	}
	return Placement{
		nDisks:      nDisks,
		pagesPerCyl: pagesPerCyl,
		dbPages:     dbPages,
		physPages:   cylsTotal * pagesPerCyl,
	}
}

// NDisks reports the number of data disks.
func (p Placement) NDisks() int { return p.nDisks }

// PagesPerCyl reports pages per cylinder.
func (p Placement) PagesPerCyl() int { return p.pagesPerCyl }

// DBPages reports the size of the database region.
func (p Placement) DBPages() int { return p.dbPages }

// PhysPages reports the total physical page space across all disks.
func (p Placement) PhysPages() int { return p.physPages }

// CylindersPerDisk reports each disk's cylinder count.
func (p Placement) CylindersPerDisk() int {
	return p.physPages / p.pagesPerCyl / p.nDisks
}

// Locate maps a physical page to (disk index, local page number on disk).
func (p Placement) Locate(phys int) (diskIdx, local int) {
	if phys < 0 || phys >= p.physPages {
		panic(fmt.Sprintf("machine: physical page %d out of range [0,%d)", phys, p.physPages))
	}
	cyl := phys / p.pagesPerCyl
	diskIdx = cyl % p.nDisks
	localCyl := cyl / p.nDisks
	return diskIdx, localCyl*p.pagesPerCyl + phys%p.pagesPerCyl
}

// DiskOf reports only the disk index of a physical page.
func (p Placement) DiskOf(phys int) int {
	d, _ := p.Locate(phys)
	return d
}

// ExtraRegionStart reports the first physical page above the database
// region, aligned to a cylinder boundary.
func (p Placement) ExtraRegionStart() int {
	cyl := (p.dbPages + p.pagesPerCyl - 1) / p.pagesPerCyl
	return cyl * p.pagesPerCyl
}

// geometry builds the per-disk geometry for this placement.
func (p Placement) geometry(pagesPerTrack, tracksPerCyl int) disk.Geometry {
	return disk.Geometry{
		PagesPerTrack: pagesPerTrack,
		TracksPerCyl:  tracksPerCyl,
		Cylinders:     p.CylindersPerDisk(),
	}
}

// RingAllocator hands out physical pages from a per-disk ring over a region
// of whole cylinders, as used by the overwriting architectures' scratch
// space. Allocations for a given disk always land on that disk.
type RingAllocator struct {
	p       Placement
	start   int // first physical page of the region (cylinder aligned)
	cyls    int // cylinders in the region per disk
	cursors []int
}

// NewRingAllocator creates a ring over cylsPerDisk cylinders per disk
// starting at physical page start (must be cylinder aligned).
func NewRingAllocator(p Placement, start, cylsPerDisk int) *RingAllocator {
	if start%p.pagesPerCyl != 0 {
		panic("machine: ring region not cylinder aligned")
	}
	return &RingAllocator{p: p, start: start, cyls: cylsPerDisk, cursors: make([]int, p.nDisks)}
}

// Next returns the next scratch page on diskIdx.
func (r *RingAllocator) Next(diskIdx int) int {
	ppc := r.p.pagesPerCyl
	n := r.cursors[diskIdx]
	r.cursors[diskIdx] = (n + 1) % (r.cyls * ppc)
	cylInRegion := n / ppc
	// Region cylinders on diskIdx: start cylinder of region + offset so the
	// striping lands on diskIdx.
	startCyl := r.start / ppc
	// Find the first region cylinder assigned to diskIdx.
	first := startCyl
	for first%r.p.nDisks != diskIdx {
		first++
	}
	cyl := first + cylInRegion*r.p.nDisks
	return cyl*ppc + n%ppc
}

// Capacity reports pages available per disk in the ring.
func (r *RingAllocator) Capacity() int { return r.cyls * r.p.pagesPerCyl }
