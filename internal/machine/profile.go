package machine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Profile is a sampled utilization timeline of one simulation run: at each
// sample instant it records the fraction of busy data disks and query
// processors, cache occupancy, and the number of updated pages blocked
// waiting for recovery data.
type Profile struct {
	SampleEvery sim.Time
	TimesMs     []float64
	DiskBusy    []float64 // busy data disks / data disks
	QPBusy      []float64 // busy query processors / query processors
	CacheUsed   []float64 // used frames / frames
	Blocked     []float64 // blocked updated pages (absolute)
}

// sampler drives periodic profile collection; it stops rescheduling once
// the machine has committed its whole load so the event queue can drain.
// Samples are read from the observability registry's gauges — the
// profiler is a consumer of the metrics layer, not a second set of probes
// into the components.
func (m *Machine) startProfiler(every sim.Time) {
	m.profile = &Profile{SampleEvery: every}
	reg := m.sink.Reg
	diskBusy := make([]*obs.Gauge, len(m.disks))
	for i, d := range m.disks {
		diskBusy[i] = reg.Gauge("disk." + d.Name() + ".busy")
	}
	qpBusy := reg.Gauge("resource." + m.qps.Name() + ".busy")
	cacheUsed := reg.Gauge("cache.used")
	blocked := reg.Gauge("cache.blocked")

	sample := func() {
		p := m.profile
		busy := 0.0
		for _, g := range diskBusy {
			busy += g.Value()
		}
		p.TimesMs = append(p.TimesMs, m.eng.Now().ToMs())
		p.DiskBusy = append(p.DiskBusy, busy/float64(len(m.disks)))
		p.QPBusy = append(p.QPBusy, qpBusy.Value()/float64(m.qps.Capacity()))
		p.CacheUsed = append(p.CacheUsed, cacheUsed.Value()/float64(m.cache.Frames()))
		p.Blocked = append(p.Blocked, blocked.Value())
	}
	var tick func()
	tick = func() {
		sample()
		if m.committed < m.cfg.NumTxns {
			m.eng.After(every, tick)
		}
	}
	m.eng.After(every, tick)
}

// sparkRunes render a 0..1 series as an eight-level bar sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func spark(series []float64, scale float64) string {
	if scale <= 0 {
		// A zero or negative scale would divide to ±Inf/NaN and index
		// nonsense runes; fall back to the unit scale.
		scale = 1
	}
	var b strings.Builder
	for _, v := range series {
		x := v / scale
		if x < 0 || math.IsNaN(x) {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		idx := int(x * float64(len(sparkRunes)-1))
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// condense averages a series down to at most n points.
func condense(series []float64, n int) []float64 {
	if len(series) <= n {
		return series
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(series) / n
		hi := (i + 1) * len(series) / n
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range series[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Render formats the profile as labelled sparklines, width columns wide.
func (p *Profile) Render(width int) string {
	if len(p.TimesMs) == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 72
	}
	maxBlocked := 1.0
	for _, v := range p.Blocked {
		if v > maxBlocked {
			maxBlocked = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "utilization over %.0f ms (%d samples, %s apart):\n",
		p.TimesMs[len(p.TimesMs)-1], len(p.TimesMs), p.SampleEvery)
	fmt.Fprintf(&b, "  data disks  %s\n", spark(condense(p.DiskBusy, width), 1))
	fmt.Fprintf(&b, "  query procs %s\n", spark(condense(p.QPBusy, width), 1))
	fmt.Fprintf(&b, "  cache used  %s\n", spark(condense(p.CacheUsed, width), 1))
	fmt.Fprintf(&b, "  blocked pgs %s (peak %.0f)\n",
		spark(condense(p.Blocked, width), maxBlocked), maxBlocked)
	return b.String()
}

// Mean reports the average of a sampled series. It is a thin alias for
// sim.SeriesMean, kept for callers of the profile API.
func Mean(series []float64) float64 { return sim.SeriesMean(series) }
