package machine

import "testing"

// TestCalibrationBareMachine prints the bare-machine numbers for the four
// paper configurations next to the paper's Table 1 values. Shapes (ordering,
// rough ratios) are asserted; absolute values are logged for calibration.
func TestCalibrationBareMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	type cfgCase struct {
		name       string
		sequential bool
		parallel   bool
		paperExec  float64
		paperComp  float64
	}
	cases := []cfgCase{
		{"Conventional-Random", false, false, 18.0, 7398.4},
		{"Parallel-Random", false, true, 16.6, 6476.0},
		{"Conventional-Sequential", true, false, 11.0, 4016.5},
		{"Parallel-Sequential", true, true, 1.9, 758.1},
	}
	got := map[string]*Result{}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.Workload.Sequential = c.sequential
		cfg.ParallelDisks = c.parallel
		res, err := Run(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = res
		t.Logf("%-24s exec/page %6.1f (paper %5.1f)  completion %8.1f (paper %7.1f)  qp=%.2f disk=%.2f accesses=%d",
			c.name, res.ExecPerPageMs, c.paperExec, res.MeanCompletionMs, c.paperComp,
			res.QPUtil, res.DataDiskUtil, res.DataDiskAccesses)
	}
	// Shape assertions from the paper's Table 1.
	if !(got["Parallel-Sequential"].ExecPerPageMs < got["Conventional-Sequential"].ExecPerPageMs &&
		got["Conventional-Sequential"].ExecPerPageMs < got["Parallel-Random"].ExecPerPageMs &&
		got["Parallel-Random"].ExecPerPageMs <= got["Conventional-Random"].ExecPerPageMs*1.02) {
		t.Errorf("configuration ordering broken")
	}
	// Parallel-sequential is dramatically (>3x) faster than conventional-sequential.
	if got["Conventional-Sequential"].ExecPerPageMs/got["Parallel-Sequential"].ExecPerPageMs < 3 {
		t.Errorf("parallel-access advantage on sequential too small: %.1f vs %.1f",
			got["Conventional-Sequential"].ExecPerPageMs, got["Parallel-Sequential"].ExecPerPageMs)
	}
	// Random configurations are I/O bound: high disk utilization, low QP.
	if got["Conventional-Random"].DataDiskUtil < 0.85 {
		t.Errorf("conventional-random disks not saturated: %.2f", got["Conventional-Random"].DataDiskUtil)
	}
	if got["Conventional-Random"].QPUtil > 0.3 {
		t.Errorf("conventional-random QPs too busy: %.2f", got["Conventional-Random"].QPUtil)
	}
}
