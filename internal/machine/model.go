package machine

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// PlannedRead is one step of a transaction's execution plan: fetch the
// physical page(s) backing a logical page, process them on a query
// processor, and — if the page is updated — write the new version back.
type PlannedRead struct {
	Page      workload.PageID // logical page
	PhysPages []int           // physical pages fetched (usually one)
	Update    bool            // produces an updated page
	WriteTo   int             // physical destination of the updated page
	CPU       sim.Time        // query-processor service time
}

// Model is a recovery architecture plugged into the machine. The bare
// machine is Base. Models are driven by the machine at well-defined points
// in the transaction pipeline; each hook receives a continuation that the
// model must eventually invoke exactly once.
type Model interface {
	// Name identifies the model in results.
	Name() string
	// Attach wires the model to the machine before the run starts; models
	// create their auxiliary devices (log disks, page-table disks) here.
	Attach(m *Machine)
	// Plan builds the transaction's execution plan.
	Plan(t *ActiveTxn) []PlannedRead
	// BeforeRead runs before the data-disk read of pr is issued (page-table
	// indirection goes here). Call proceed to start the read.
	BeforeRead(t *ActiveTxn, pr *PlannedRead, proceed func())
	// UpdateReady runs when a query processor finishes building an updated
	// page. Call release when the page may be written to disk (the WAL rule
	// gates it here). Until release, the page is counted as blocked in the
	// cache.
	UpdateReady(t *ActiveTxn, pr *PlannedRead, release func())
	// BeforeCommit runs once all planned reads are processed. Recovery data
	// must reach stable storage here (log force, page-table writes). Call
	// done when finished.
	BeforeCommit(t *ActiveTxn, done func())
	// AfterCommit runs once the commit point is reached and all planned
	// writes are durable; post-commit work (overwriting shadows from the
	// scratch area) goes here. Call done when finished.
	AfterCommit(t *ActiveTxn, done func())
	// OnAbort runs instead of BeforeCommit when a transaction aborts: the
	// model performs its undo actions (reading recovery data, restoring
	// pages) and calls done when the database state is clean again.
	OnAbort(t *ActiveTxn, done func())
	// OnCachePressure is called when the controller cannot allocate frames
	// because updated pages are blocked; logging models should expedite
	// their log writes (the paper's forced log-page flush).
	OnCachePressure(t *ActiveTxn)
	// Stats reports model-specific statistics for the run result.
	Stats() map[string]float64
}

// SpaceRequirer is implemented by models that need physical disk space
// beyond the database region (scratch rings, differential files, version
// pairs). ExtraPhysPages is consulted before the data disks are built.
type SpaceRequirer interface {
	ExtraPhysPages(cfg Config) int
}

// PhysMapper is implemented by models that relocate the database region
// itself (the version-selection architecture doubles every page). DBPhys
// maps a logical database page to the physical page holding its current
// version.
type PhysMapper interface {
	DBPhys(p workload.PageID) int
}

// Base is the bare machine: no recovery data is collected. It is also the
// embedding base for real models, supplying no-op hooks.
type Base struct {
	M *Machine
}

// Name implements Model.
func (b *Base) Name() string { return "bare" }

// Attach implements Model.
func (b *Base) Attach(m *Machine) { b.M = m }

// Plan implements Model with the standard one-phys-page-per-read plan.
func (b *Base) Plan(t *ActiveTxn) []PlannedRead { return b.M.StandardPlan(t) }

// BeforeRead implements Model; the bare machine reads immediately.
func (b *Base) BeforeRead(t *ActiveTxn, pr *PlannedRead, proceed func()) { proceed() }

// UpdateReady implements Model; without recovery the page is immediately
// flushable.
func (b *Base) UpdateReady(t *ActiveTxn, pr *PlannedRead, release func()) { release() }

// BeforeCommit implements Model.
func (b *Base) BeforeCommit(t *ActiveTxn, done func()) { done() }

// AfterCommit implements Model.
func (b *Base) AfterCommit(t *ActiveTxn, done func()) { done() }

// OnAbort implements Model; architectures that never modify current data in
// place (shadow paging, differential files, no-undo overwriting) abort for
// free.
func (b *Base) OnAbort(t *ActiveTxn, done func()) { done() }

// OnCachePressure implements Model.
func (b *Base) OnCachePressure(t *ActiveTxn) {}

// Stats implements Model.
func (b *Base) Stats() map[string]float64 { return nil }

// StandardPlan builds the bare-machine plan: each logical page is fetched
// from its identity physical location, costs CPUPerPage (+CPUPerUpdate when
// updated), and updated pages are written back in place.
func (m *Machine) StandardPlan(t *ActiveTxn) []PlannedRead {
	plan := make([]PlannedRead, len(t.T.Reads))
	for i, p := range t.T.Reads {
		phys := m.DBPhys(p)
		update := t.T.Writes[p]
		cpu := m.cfg.CPUPerPage
		if update {
			cpu += m.cfg.CPUPerUpdate
		}
		plan[i] = PlannedRead{
			Page:      p,
			PhysPages: []int{phys},
			Update:    update,
			WriteTo:   phys,
			CPU:       cpu,
		}
	}
	return plan
}
