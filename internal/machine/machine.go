package machine

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ActiveTxn is a transaction in execution on the machine.
type ActiveTxn struct {
	T    *workload.Txn
	Plan []PlannedRead

	// Aborted marks a transaction that will stop after a prefix of its
	// plan and run the model's undo actions instead of committing.
	Aborted bool

	next            int  // next plan entry to issue
	framesHeld      int  // cache frames currently held
	blockedPages    int  // updated pages held waiting for recovery data
	processed       int  // plan entries processed by a query processor
	writesRemaining int  // planned updated-page writes not yet durable
	locksGranted    bool // static lock set fully granted
	started         bool
	start           sim.Time
	lastWrite       sim.Time
	readsDone       bool
	commitHookDone  bool
	afterCommit     bool

	lockedPages []workload.PageID

	// QP is the query-processor index that produced the most recent update;
	// recovery models use it for log-processor selection.
	QP int

	// Wait-time breakdown, accumulated as the transaction moves through the
	// pipeline (milliseconds of virtual time). Waits on concurrent requests
	// overlap, so the components can sum to more than the completion time;
	// they answer "where did this transaction's requests spend their time",
	// not "what serialized it".
	admitAt        sim.Time
	commitStart    sim.Time
	lockWaitMs     float64 // admission -> full lock set granted
	qpWaitMs       float64 // query-processor queue time across plan entries
	diskWaitMs     float64 // data-disk queue + service across reads/writes
	recoveryWaitMs float64 // address resolution + blocked-for-recovery-data
	commitWaitMs   float64 // reads done -> commit/abort hook finished
}

// ID reports the transaction's workload identifier.
func (t *ActiveTxn) ID() int { return t.T.ID }

// Machine is one simulated database machine instance. Build it with New and
// execute the configured load with Run.
type Machine struct {
	cfg    Config
	eng    *sim.Engine
	rng    *sim.RNG
	model  Model
	place  Placement
	disks  []disk.Device
	cache  *cache.Cache
	qps    *sim.Resource
	locks  *lockTable
	window int

	pending []*workload.Txn
	active  []*ActiveTxn

	pagesProcessed int64
	completion     sim.Tally
	committed      int
	aborted        int
	endTime        sim.Time
	profile        *Profile

	begun          bool
	admissionsHeld bool
	quiesceWaiters []func()

	sink        *obs.Sink
	hCompletion *obs.Histogram
	hLockWait   *obs.Histogram
	hQPWait     *obs.Histogram
	hDiskWait   *obs.Histogram
	hRecovery   *obs.Histogram
	hCommitWait *obs.Histogram
	waitLock    sim.Tally // per-committed-txn wait sums, in ms
	waitQP      sim.Tally
	waitDisk    sim.Tally
	waitRec     sim.Tally
	waitCommit  sim.Tally
}

// New builds a machine for cfg with the given recovery model (nil selects
// the bare machine).
func New(cfg Config, model Model) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		model = &Base{}
	}
	extra := 0
	if sr, ok := model.(SpaceRequirer); ok {
		extra = sr.ExtraPhysPages(cfg)
	}
	pagesPerCyl := cfg.PagesPerTrack * cfg.TracksPerCyl
	place := newPlacement(cfg.DataDisks, pagesPerCyl, cfg.Workload.DBPages, extra)

	eng := sim.New()
	m := &Machine{
		cfg:    cfg,
		eng:    eng,
		rng:    sim.NewRNG(cfg.Seed),
		model:  model,
		place:  place,
		cache:  cache.New(eng, cfg.CacheFrames),
		qps:    sim.NewResource(eng, "query-processors", cfg.QueryProcessors),
		locks:  newLockTable(),
		window: cfg.prefetchWindow(),
		sink:   obs.NewSink(eng),
	}
	geom := place.geometry(cfg.PagesPerTrack, cfg.TracksPerCyl)
	for i := 0; i < cfg.DataDisks; i++ {
		name := fmt.Sprintf("data%d", i)
		if cfg.ParallelDisks {
			m.disks = append(m.disks, disk.NewParallel(eng, name, geom, cfg.DiskParams))
		} else {
			m.disks = append(m.disks, disk.NewConventional(eng, name, geom, cfg.DiskParams))
		}
		m.disks[i].Instrument(m.sink)
	}
	m.instrument()
	txns, err := workload.Generate(cfg.NumTxns, cfg.Workload, m.rng.Fork())
	if err != nil {
		return nil, err
	}
	m.pending = txns
	model.Attach(m)
	return m, nil
}

// instrument registers the machine's own metrics with the observability
// registry: the query-processor pool, the cache, lock-table counters, and
// the per-transaction lifecycle histograms that back the Result
// percentiles and wait breakdown.
func (m *Machine) instrument() {
	reg := m.sink.Reg
	m.cache.Instrument(m.sink)
	m.ObserveResource(m.qps)
	reg.Func("lock.waits", func() float64 { return float64(m.locks.Waits()) })
	reg.Func("engine.events", func() float64 { return float64(m.eng.Steps()) })
	reg.Func("txn.committed", func() float64 { return float64(m.committed) })
	reg.Func("txn.aborted", func() float64 { return float64(m.aborted) })
	reg.Func("machine.pagesProcessed", func() float64 { return float64(m.pagesProcessed) })
	m.hCompletion = reg.Histogram("txn.completion.ms")
	m.hLockWait = reg.Histogram("txn.wait.lock.ms")
	m.hQPWait = reg.Histogram("txn.wait.qp.ms")
	m.hDiskWait = reg.Histogram("txn.wait.disk.ms")
	m.hRecovery = reg.Histogram("txn.wait.recovery.ms")
	m.hCommitWait = reg.Histogram("txn.wait.commit.ms")
}

// Obs returns the machine's observability sink; recovery models use it to
// register their own metrics and emit trace events.
func (m *Machine) Obs() *obs.Sink { return m.sink }

// Metrics returns the machine's metrics registry.
func (m *Machine) Metrics() *obs.Registry { return m.sink.Reg }

// SetTracer attaches a tracer (such as an obs.TraceBuffer) so the run
// emits spans; call it after New and before Run. nil disables tracing.
func (m *Machine) SetTracer(tr obs.Tracer) { m.sink.SetTracer(tr) }

// resourceObs feeds a resource's per-request timings into wait/service
// histograms and, when tracing, per-server spans.
type resourceObs struct {
	m       *Machine
	hWaitMs *obs.Histogram
	hSvcMs  *obs.Histogram
}

// ResourceRequest implements sim.ResourceObserver.
func (o *resourceObs) ResourceRequest(r *sim.Resource, server int, enq, started, ended sim.Time) {
	o.hWaitMs.Observe((started - enq).ToMs())
	o.hSvcMs.Observe((ended - started).ToMs())
	if !o.m.sink.Tracing() {
		return
	}
	tr := o.m.sink.Tracer()
	track := fmt.Sprintf("%s/%d", r.Name(), server)
	if started > enq {
		tr.Span(track, "wait", enq, started, nil)
	}
	tr.Span(track, "service", started, ended, nil)
}

// ObserveResource wires a resource pool into the observability layer:
// busy/queue gauges, utilization and served-count stats, and queue-wait
// vs. service histograms (plus per-server trace spans when tracing).
// The machine observes its own query-processor pool; recovery models call
// this for the resources they create (interconnects, page-table CPUs).
func (m *Machine) ObserveResource(r *sim.Resource) {
	reg := m.sink.Reg
	pre := "resource." + r.Name()
	reg.RegisterGauge(pre+".busy", r.BusyTW())
	reg.RegisterGauge(pre+".queue", r.QueueTW())
	reg.Func(pre+".utilization", r.Utilization)
	reg.Func(pre+".served", func() float64 { return float64(r.Served()) })
	r.SetObserver(&resourceObs{
		m:       m,
		hWaitMs: reg.Histogram(pre + ".wait.ms"),
		hSvcMs:  reg.Histogram(pre + ".service.ms"),
	})
}

// txnTrack names the trace lane for one transaction.
func txnTrack(t *ActiveTxn) string { return fmt.Sprintf("txn/%d", t.T.ID) }

// Run executes the whole load and returns the collected statistics.
func Run(cfg Config, model Model) (*Result, error) {
	m, err := New(cfg, model)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// begin bootstraps the run (profiler, initial admissions) exactly once, so
// Run and RunUntil can be mixed: a sweep may advance a machine in steps and
// then let it finish.
func (m *Machine) begin() {
	if m.begun {
		return
	}
	m.begun = true
	if m.cfg.ProfileEvery > 0 {
		m.startProfiler(m.cfg.ProfileEvery)
	}
	for i := 0; i < m.cfg.MPL && len(m.pending) > 0; i++ {
		m.admitNext()
	}
	m.schedule()
}

// Run executes the whole load and returns the collected statistics.
func (m *Machine) Run() (*Result, error) {
	m.begin()
	m.eng.Run()
	if m.committed+m.aborted != m.cfg.NumTxns {
		return nil, m.stallError()
	}
	return m.result(), nil
}

// Partial is the progress of a run stopped at a virtual-time instant — the
// performance simulator's view of a crash point. Because the simulator is
// deterministic, two machines built from the same Config reach an identical
// Partial at any instant t; internal/faultinj sweeps assert exactly that.
type Partial struct {
	SimTime        sim.Time // virtual time when the run was stopped
	Committed      int      // transactions committed by then
	Aborted        int      // transactions aborted by then
	PagesProcessed int64    // pages processed by then
	Events         int64    // simulation events executed by then
}

// RunUntil advances the load to virtual time t (bootstrapping the run on
// first call) and reports the progress at that instant. Calling it again
// with a later t resumes the same run; Run finishes it.
func (m *Machine) RunUntil(t sim.Time) Partial {
	m.begin()
	m.eng.RunUntil(t)
	return Partial{
		SimTime:        m.eng.Now(),
		Committed:      m.committed,
		Aborted:        m.aborted,
		PagesProcessed: m.pagesProcessed,
		Events:         int64(m.eng.Steps()),
	}
}

func (m *Machine) stallError() error {
	detail := ""
	for _, t := range m.active {
		detail += fmt.Sprintf(" txn%d{next=%d/%d processed=%d frames=%d writes=%d locks=%t readsDone=%t commitHook=%t}",
			t.T.ID, t.next, len(t.Plan), t.processed, t.framesHeld,
			t.writesRemaining, t.locksGranted, t.readsDone, t.commitHookDone)
	}
	return fmt.Errorf("machine: stalled with %d+%d/%d finished (model %s):%s",
		m.committed, m.aborted, m.cfg.NumTxns, m.model.Name(), detail)
}

// --- accessors used by recovery models ---

// Eng returns the simulation engine.
func (m *Machine) Eng() *sim.Engine { return m.eng }

// RNG returns the machine's random stream.
func (m *Machine) RNG() *sim.RNG { return m.rng }

// Cfg returns the machine configuration.
func (m *Machine) Cfg() Config { return m.cfg }

// CachePool returns the disk cache.
func (m *Machine) CachePool() *cache.Cache { return m.cache }

// Place returns the physical placement map.
func (m *Machine) Place() Placement { return m.place }

// QPs returns the query-processor pool.
func (m *Machine) QPs() *sim.Resource { return m.qps }

// DBPhys maps a logical database page to the physical page holding its
// current version: the identity unless the model remaps the region.
func (m *Machine) DBPhys(p workload.PageID) int {
	if pm, ok := m.model.(PhysMapper); ok {
		return pm.DBPhys(p)
	}
	return int(p)
}

// NewAuxDisk creates an auxiliary conventional disk (log disk, page-table
// disk) with the given cylinder count, sharing the machine's disk timing
// parameters. Auxiliary disks are owned by the model.
func (m *Machine) NewAuxDisk(name string, cylinders int) disk.Device {
	geom := disk.Geometry{
		PagesPerTrack: m.cfg.PagesPerTrack,
		TracksPerCyl:  m.cfg.TracksPerCyl,
		Cylinders:     cylinders,
	}
	d := disk.NewConventional(m.eng, name, geom, m.cfg.DiskParams)
	d.Instrument(m.sink)
	return d
}

// SubmitPhys issues a read or write of physical pages to the data disks.
// The cache is page addressable, so conventional disks are driven one page
// per access (the paper's "separate access for each page"); parallel-access
// disks take one request per cylinder, which their hardware serves in a
// single access. done runs once every piece completes.
func (m *Machine) SubmitPhys(pages []int, write bool, done func()) {
	if len(pages) == 0 {
		if done != nil {
			done()
		}
		return
	}
	if !write {
		for _, p := range pages {
			m.cache.NoteAccess(p)
		}
	}
	type key struct{ disk, cyl int }
	groups := make(map[key][]int)
	order := make([]key, 0, 2)
	ppc := m.place.PagesPerCyl()
	for i, p := range pages {
		d, local := m.place.Locate(p)
		k := key{disk: d}
		if m.cfg.ParallelDisks {
			k.cyl = local / ppc
		} else {
			k.cyl = i // unique key: one access per page on conventional disks
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], local)
	}
	remaining := len(order)
	for _, k := range order {
		k := k
		m.disks[k.disk].Submit(&disk.Request{
			Pages: groups[k],
			Write: write,
			Done: func() {
				remaining--
				if remaining == 0 && done != nil {
					done()
				}
			},
		})
	}
}

// NoteTxnWrite records that a model-issued write belonging to t finished
// now; it advances the transaction's last-write time used for the
// completion-time metric.
func (m *Machine) NoteTxnWrite(t *ActiveTxn) { t.lastWrite = m.eng.Now() }

// NoteProcessedWrite counts n additional written pages in the machine's
// pages-processed metric (used by models whose updated pages are written
// outside the standard plan, such as differential-file output pages).
func (m *Machine) NoteProcessedWrite(n int) { m.pagesProcessed += int64(n) }

// --- transaction pipeline ---

func (m *Machine) admitNext() {
	if len(m.pending) == 0 || m.admissionsHeld {
		return
	}
	tx := m.pending[0]
	m.pending = m.pending[1:]
	t := &ActiveTxn{T: tx}
	t.Plan = m.model.Plan(t)
	if m.cfg.AbortFrac > 0 && m.rng.Bool(m.cfg.AbortFrac) && len(t.Plan) > 1 {
		// The transaction will abort after a random prefix of its plan.
		t.Aborted = true
		t.Plan = t.Plan[:m.rng.UniformInt(1, len(t.Plan))]
	}
	for i := range t.Plan {
		if t.Plan[i].Update {
			t.writesRemaining++
		}
	}
	m.active = append(m.active, t)
	t.admitAt = m.eng.Now()
	m.locks.AcquireAll(t, func() {
		t.locksGranted = true
		w := m.eng.Now() - t.admitAt
		t.lockWaitMs = w.ToMs()
		m.hLockWait.Observe(t.lockWaitMs)
		if w > 0 && m.sink.Tracing() {
			m.sink.Tracer().Span(txnTrack(t), "lock-wait", t.admitAt, m.eng.Now(), nil)
		}
		m.schedule()
	})
}

// schedule issues as many reads as frames, windows and locks allow. It is
// idempotent and called after every state change.
func (m *Machine) schedule() {
	for progress := true; progress; {
		progress = false
		for _, t := range m.active {
			if !t.locksGranted || t.next >= len(t.Plan) {
				continue
			}
			if t.framesHeld >= m.window {
				// The transaction's window is exhausted. Only if every held
				// frame is an updated page waiting for its recovery data is
				// it truly stuck — then the back-end controller asks the
				// model to expedite (the paper's forced log-page flush).
				if t.blockedPages > 0 && t.blockedPages >= t.framesHeld {
					m.model.OnCachePressure(t)
				}
				continue
			}
			if !m.cache.TryAlloc() {
				if m.cache.Blocked() > 0 {
					m.model.OnCachePressure(t)
				}
				return
			}
			m.issueNext(t)
			progress = true
		}
	}
}

func (m *Machine) issueNext(t *ActiveTxn) {
	if !t.started {
		t.started = true
		t.start = m.eng.Now()
	}
	pr := &t.Plan[t.next]
	t.next++
	t.framesHeld++
	resolveStart := m.eng.Now()
	m.model.BeforeRead(t, pr, func() {
		// Time spent resolving the page address (page-table lookups) is part
		// of the recovery-data wait.
		t.recoveryWaitMs += (m.eng.Now() - resolveStart).ToMs()
		readStart := m.eng.Now()
		m.SubmitPhys(pr.PhysPages, false, func() {
			t.diskWaitMs += (m.eng.Now() - readStart).ToMs()
			if m.sink.Tracing() {
				m.sink.Tracer().Span(txnTrack(t), "read", readStart, m.eng.Now(),
					map[string]any{"page": int(pr.Page)})
			}
			m.onReadDone(t, pr)
		})
	})
}

func (m *Machine) onReadDone(t *ActiveTxn, pr *PlannedRead) {
	enq := m.eng.Now()
	m.qps.RequestServer(pr.CPU, func(server int) {
		t.qpWaitMs += (m.eng.Now() - enq - pr.CPU).ToMs()
		m.onProcessed(t, pr, server)
	})
}

func (m *Machine) onProcessed(t *ActiveTxn, pr *PlannedRead, server int) {
	m.pagesProcessed++
	t.processed++
	if pr.Update {
		t.QP = server
		m.cache.AdjustBlocked(1)
		t.blockedPages++
		released := false
		blockStart := m.eng.Now()
		m.model.UpdateReady(t, pr, func() {
			if released {
				panic("machine: UpdateReady release called twice")
			}
			released = true
			blocked := m.eng.Now() - blockStart
			t.recoveryWaitMs += blocked.ToMs()
			if blocked > 0 && m.sink.Tracing() {
				m.sink.Tracer().Span(txnTrack(t), "recovery-wait", blockStart, m.eng.Now(),
					map[string]any{"page": int(pr.Page)})
			}
			m.cache.AdjustBlocked(-1)
			t.blockedPages--
			m.issueWrite(t, pr)
		})
	} else {
		m.releaseFrame(t)
	}
	if t.processed == len(t.Plan) && !t.readsDone {
		t.readsDone = true
		t.commitStart = m.eng.Now()
		hook := m.model.BeforeCommit
		if t.Aborted {
			hook = m.model.OnAbort
		}
		hook(t, func() {
			t.commitHookDone = true
			t.commitWaitMs = (m.eng.Now() - t.commitStart).ToMs()
			if m.sink.Tracing() {
				name := "commit"
				if t.Aborted {
					name = "abort"
				}
				m.sink.Tracer().Span(txnTrack(t), name, t.commitStart, m.eng.Now(), nil)
			}
			m.maybeAfterCommit(t)
		})
	}
	m.schedule()
}

func (m *Machine) issueWrite(t *ActiveTxn, pr *PlannedRead) {
	writeStart := m.eng.Now()
	m.SubmitPhys([]int{pr.WriteTo}, true, func() {
		t.diskWaitMs += (m.eng.Now() - writeStart).ToMs()
		if m.sink.Tracing() {
			m.sink.Tracer().Span(txnTrack(t), "write", writeStart, m.eng.Now(),
				map[string]any{"page": int(pr.Page)})
		}
		m.pagesProcessed++
		t.lastWrite = m.eng.Now()
		t.writesRemaining--
		m.releaseFrame(t)
		m.maybeAfterCommit(t)
	})
}

func (m *Machine) releaseFrame(t *ActiveTxn) {
	t.framesHeld--
	if t.framesHeld < 0 {
		panic("machine: negative frames held")
	}
	m.cache.Release()
	m.schedule()
}

func (m *Machine) maybeAfterCommit(t *ActiveTxn) {
	if !t.readsDone || !t.commitHookDone || t.writesRemaining > 0 || t.afterCommit {
		return
	}
	t.afterCommit = true
	if t.Aborted {
		// Undo already ran in OnAbort; nothing to publish.
		m.complete(t)
		return
	}
	m.model.AfterCommit(t, func() { m.complete(t) })
}

func (m *Machine) complete(t *ActiveTxn) {
	m.locks.ReleaseAll(t)
	if t.Aborted {
		m.aborted++
	} else {
		completionMs := (m.eng.Now() - t.start).ToMs()
		m.completion.Add(completionMs)
		m.committed++
		m.hCompletion.Observe(completionMs)
		m.hQPWait.Observe(t.qpWaitMs)
		m.hDiskWait.Observe(t.diskWaitMs)
		m.hRecovery.Observe(t.recoveryWaitMs)
		m.hCommitWait.Observe(t.commitWaitMs)
		m.waitLock.Add(t.lockWaitMs)
		m.waitQP.Add(t.qpWaitMs)
		m.waitDisk.Add(t.diskWaitMs)
		m.waitRec.Add(t.recoveryWaitMs)
		m.waitCommit.Add(t.commitWaitMs)
	}
	if m.sink.Tracing() {
		name := "txn(committed)"
		if t.Aborted {
			name = "txn(aborted)"
		}
		m.sink.Tracer().Span(txnTrack(t), name, t.admitAt, m.eng.Now(), map[string]any{
			"pages":          len(t.Plan),
			"lockWaitMs":     t.lockWaitMs,
			"qpWaitMs":       t.qpWaitMs,
			"diskWaitMs":     t.diskWaitMs,
			"recoveryWaitMs": t.recoveryWaitMs,
			"commitWaitMs":   t.commitWaitMs,
		})
	}
	for i, a := range m.active {
		if a == t {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	m.endTime = m.eng.Now()
	if len(m.active) == 0 && len(m.quiesceWaiters) > 0 {
		waiters := m.quiesceWaiters
		m.quiesceWaiters = nil
		for _, w := range waiters {
			w()
		}
	}
	m.admitNext()
	m.schedule()
}

// Finished reports whether the whole load has committed or aborted; models
// use it to stop self-rescheduling activities (checkpoint timers).
func (m *Machine) Finished() bool { return m.committed+m.aborted >= m.cfg.NumTxns }

// HoldAdmissions stops new transactions from being admitted; running
// transactions continue. Models use it for quiescing checkpoints.
func (m *Machine) HoldAdmissions() { m.admissionsHeld = true }

// ReleaseAdmissions resumes admissions, refilling to the multiprogramming
// level.
func (m *Machine) ReleaseAdmissions() {
	if !m.admissionsHeld {
		return
	}
	m.admissionsHeld = false
	for len(m.active) < m.cfg.MPL && len(m.pending) > 0 {
		m.admitNext()
	}
	m.schedule()
}

// OnQuiescent runs fn the next time no transaction is active (immediately
// if that is already the case). Combine with HoldAdmissions to drain the
// machine for a quiescing checkpoint.
func (m *Machine) OnQuiescent(fn func()) {
	if len(m.active) == 0 {
		fn()
		return
	}
	m.quiesceWaiters = append(m.quiesceWaiters, fn)
}

func (m *Machine) result() *Result {
	r := &Result{
		Name:           m.model.Name(),
		SimTime:        m.endTime,
		PagesProcessed: m.pagesProcessed,
		Committed:      m.committed,
		Aborted:        m.aborted,
		LockWaits:      m.locks.Waits(),
		QPUtil:         m.qps.Utilization(),
		MeanBlocked:    m.cache.MeanBlocked(),
		MaxBlocked:     m.cache.MaxBlocked(),
		MeanCacheUsed:  m.cache.MeanUsed(),
		Extra:          map[string]float64{},
	}
	if m.pagesProcessed > 0 {
		r.ExecPerPageMs = m.endTime.ToMs() / float64(m.pagesProcessed)
	}
	r.MeanCompletionMs = m.completion.Mean()
	var sum float64
	for _, d := range m.disks {
		u := d.Utilization()
		r.DataDiskUtils = append(r.DataDiskUtils, u)
		sum += u
		r.DataDiskAccesses += d.Accesses()
	}
	r.DataDiskUtil = sum / float64(len(m.disks))
	r.CacheHitRatio = m.cache.HitRatio()
	r.CompletionP50Ms = m.hCompletion.Percentile(50)
	r.CompletionP95Ms = m.hCompletion.Percentile(95)
	r.CompletionP99Ms = m.hCompletion.Percentile(99)
	r.Waits = WaitBreakdown{
		LockMs:     m.waitLock.Mean(),
		QPMs:       m.waitQP.Mean(),
		DiskMs:     m.waitDisk.Mean(),
		RecoveryMs: m.waitRec.Mean(),
		CommitMs:   m.waitCommit.Mean(),
	}
	model := m.model.Stats()
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Extra[k] = model[k]
		// Mirror model statistics into the registry so a metrics snapshot is
		// self-contained.
		m.sink.Reg.PutStat("model."+k, model[k])
	}
	r.Profile = m.profile
	return r
}
