package machine

import (
	"sort"

	"repro/internal/workload"
)

// lockMode is a page lock mode.
type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockTable implements the back-end controller's page-level locking. The
// machine uses static (pre-declared) locking: a transaction requests its
// whole lock set in ascending page order before it starts reading. Ordered
// acquisition makes deadlock impossible, matching the conservative
// schedulers assumed for this machine class.
type lockTable struct {
	locks map[workload.PageID]*pageLock
	waits int64 // lock waits observed (for statistics)
}

type pageLock struct {
	sHolders map[*ActiveTxn]bool
	xHolder  *ActiveTxn
	queue    []lockWaiter
}

type lockWaiter struct {
	t     *ActiveTxn
	mode  lockMode
	grant func()
}

func newLockTable() *lockTable {
	return &lockTable{locks: make(map[workload.PageID]*pageLock)}
}

// AcquireAll requests locks for all pages of t's transaction (exclusive for
// pages in its write set, shared otherwise) in ascending page order. granted
// runs once every lock is held.
func (lt *lockTable) AcquireAll(t *ActiveTxn, granted func()) {
	pages := make([]workload.PageID, len(t.T.Reads))
	copy(pages, t.T.Reads)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	var step func(i int)
	step = func(i int) {
		for ; i < len(pages); i++ {
			p := pages[i]
			mode := lockShared
			if t.T.Writes[p] {
				mode = lockExclusive
			}
			next := i + 1
			if lt.acquire(t, p, mode, func() { step(next) }) {
				continue
			}
			return // waiting; step resumes on grant
		}
		granted()
	}
	step(0)
}

// acquire tries to take page p in mode for t. It returns true if granted
// immediately; otherwise it queues wake (to be run at grant) and returns
// false.
func (lt *lockTable) acquire(t *ActiveTxn, p workload.PageID, mode lockMode, wake func()) bool {
	pl := lt.locks[p]
	if pl == nil {
		pl = &pageLock{sHolders: make(map[*ActiveTxn]bool)}
		lt.locks[p] = pl
	}
	if lt.compatible(pl, mode) && len(pl.queue) == 0 {
		lt.grant(pl, t, p, mode)
		return true
	}
	lt.waits++
	pl.queue = append(pl.queue, lockWaiter{t: t, mode: mode, grant: wake})
	return false
}

func (lt *lockTable) compatible(pl *pageLock, mode lockMode) bool {
	if pl.xHolder != nil {
		return false
	}
	if mode == lockExclusive {
		return len(pl.sHolders) == 0
	}
	return true
}

func (lt *lockTable) grant(pl *pageLock, t *ActiveTxn, p workload.PageID, mode lockMode) {
	if mode == lockExclusive {
		pl.xHolder = t
	} else {
		pl.sHolders[t] = true
	}
	t.lockedPages = append(t.lockedPages, p)
}

// ReleaseAll drops every lock t holds and grants eligible waiters FIFO.
func (lt *lockTable) ReleaseAll(t *ActiveTxn) {
	for _, p := range t.lockedPages {
		pl := lt.locks[p]
		if pl == nil {
			continue
		}
		if pl.xHolder == t {
			pl.xHolder = nil
		}
		delete(pl.sHolders, t)
		lt.wakeWaiters(pl, p)
		if pl.xHolder == nil && len(pl.sHolders) == 0 && len(pl.queue) == 0 {
			delete(lt.locks, p)
		}
	}
	t.lockedPages = nil
}

// wakeWaiters grants queued requests in FIFO order while they remain
// compatible: either one exclusive waiter, or a run of shared waiters.
func (lt *lockTable) wakeWaiters(pl *pageLock, p workload.PageID) {
	for len(pl.queue) > 0 {
		w := pl.queue[0]
		if !lt.compatible(pl, w.mode) {
			return
		}
		pl.queue = pl.queue[1:]
		lt.grant(pl, w.t, p, w.mode)
		w.grant()
		if w.mode == lockExclusive {
			return
		}
	}
}

// Waits reports the number of lock waits observed.
func (lt *lockTable) Waits() int64 { return lt.waits }
