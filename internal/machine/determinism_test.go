package machine_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/recovery/logging"
	"repro/internal/sim"
)

// oneRun executes a small logging-machine run with tracing enabled and
// returns the metrics snapshot JSON, the trace file bytes, and the result.
func oneRun(t *testing.T) ([]byte, []byte, *machine.Result) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 8
	cfg.Workload.MaxPages = 40
	cfg.ProfileEvery = sim.Ms(25)
	m, err := machine.New(cfg, logging.New(logging.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	tb := obs.NewTrace()
	m.SetTracer(tb)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Metrics().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if _, err := tb.WriteTo(&trace); err != nil {
		t.Fatal(err)
	}
	return snap, trace.Bytes(), res
}

// TestSameSeedByteIdentical asserts the observability layer's central
// guarantee: two runs with the same seed produce byte-identical metrics
// snapshots and trace files.
func TestSameSeedByteIdentical(t *testing.T) {
	snap1, trace1, res1 := oneRun(t)
	snap2, trace2, res2 := oneRun(t)
	if !bytes.Equal(snap1, snap2) {
		t.Errorf("metrics snapshots differ across same-seed runs:\n%s\n---\n%s", snap1, snap2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("trace files differ across same-seed runs (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if res1.MeanCompletionMs != res2.MeanCompletionMs {
		t.Errorf("completion means differ: %v vs %v", res1.MeanCompletionMs, res2.MeanCompletionMs)
	}
	if !json.Valid(trace1) {
		t.Error("trace output is not valid JSON")
	}
	if !json.Valid(snap1) {
		t.Error("metrics snapshot is not valid JSON")
	}
}

// TestResultObservability sanity-checks the Result fields the metrics layer
// fills in: percentile ordering, wait breakdown, cache hit ratio.
func TestResultObservability(t *testing.T) {
	_, _, res := oneRun(t)
	if res.Committed == 0 {
		t.Fatal("no committed transactions")
	}
	p50, p95, p99 := res.CompletionP50Ms, res.CompletionP95Ms, res.CompletionP99Ms
	if p50 <= 0 || !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not positive/monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if res.CacheHitRatio < 0 || res.CacheHitRatio > 1 {
		t.Errorf("cache hit ratio = %v, want in [0,1]", res.CacheHitRatio)
	}
	w := res.Waits
	for name, v := range map[string]float64{
		"lock": w.LockMs, "qp": w.QPMs, "disk": w.DiskMs,
		"recovery": w.RecoveryMs, "commit": w.CommitMs,
	} {
		if v < 0 {
			t.Errorf("%s wait = %v, want >= 0", name, v)
		}
	}
	// An I/O-bound run must report disk wait; a logging run must report
	// commit wait (the log force).
	if w.DiskMs == 0 {
		t.Error("disk wait is zero on an I/O-bound run")
	}
	if w.CommitMs == 0 {
		t.Error("commit wait is zero under logging recovery")
	}
}

// TestMetricsSnapshotContents spot-checks that the registry exposes the
// expected instrument families after a run.
func TestMetricsSnapshotContents(t *testing.T) {
	snap, _, _ := oneRun(t)
	var s obs.Snapshot
	if err := json.Unmarshal(snap, &s); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"cache.used", "cache.blocked", "disk.data0.busy", "resource.query-processors.busy"} {
		if _, ok := s.Gauges[g]; !ok {
			t.Errorf("snapshot missing gauge %q", g)
		}
	}
	for _, h := range []string{"txn.completion.ms", "txn.wait.lock.ms", "txn.wait.disk.ms", "disk.data0.service.ms"} {
		if _, ok := s.Histograms[h]; !ok {
			t.Errorf("snapshot missing histogram %q", h)
		}
	}
	for _, st := range []string{"cache.hitRatio", "disk.data0.utilization", "resource.query-processors.utilization", "txn.committed", "log.frags"} {
		if _, ok := s.Stats[st]; !ok {
			t.Errorf("snapshot missing stat %q", st)
		}
	}
	if hc := s.Histograms["txn.completion.ms"]; hc.Count != 8 {
		t.Errorf("completion histogram count = %d, want 8", hc.Count)
	}
	if s.Stats["txn.committed"] != 8 {
		t.Errorf("txn.committed = %v, want 8", s.Stats["txn.committed"])
	}
}
