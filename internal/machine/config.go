// Package machine simulates the multiprocessor-cache database machine of the
// paper: a back-end controller, a pool of query processors, a page-addressable
// disk cache, and data disks (conventional or parallel-access), executing a
// generated transaction load under page-level locking.
//
// Recovery architectures plug in through the Model interface; the bare
// machine (no recovery) is the zero Model. The simulator reports the paper's
// two metrics — execution time per page and transaction completion time —
// plus device utilizations and cache statistics.
package machine

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one simulated database machine and its workload.
type Config struct {
	// Machine structure (paper defaults: 25 QPs, 100 frames, 2 data disks).
	QueryProcessors int
	CacheFrames     int
	DataDisks       int
	ParallelDisks   bool // SURE/DBC parallel-access data disks

	// Workload.
	Workload workload.Config
	NumTxns  int // transactions in the load
	MPL      int // multiprogramming level (concurrently active transactions)
	Seed     int64

	// CPU model (VAX 11/750 class query processors).
	CPUPerPage   sim.Time // process one data page
	CPUPerUpdate sim.Time // additional time to build an updated page

	// Device model.
	DiskParams    disk.Params
	PagesPerTrack int
	TracksPerCyl  int

	// PrefetchWindow caps the cache frames a single transaction may hold
	// (in-flight reads + unprocessed + unwritten updates). 0 means
	// CacheFrames / MPL.
	PrefetchWindow int

	// ProfileEvery, when positive, samples a utilization timeline at the
	// given virtual-time interval; the result carries it as Profile.
	ProfileEvery sim.Time

	// AbortFrac is the fraction of transactions that abort partway through
	// (0 in the paper's experiments). Aborting transactions stop after a
	// random prefix of their reference string and perform the recovery
	// model's undo actions — exercising the "use of recovery data" cost the
	// paper discusses but does not measure.
	AbortFrac float64
}

// DefaultConfig is the paper's standard machine: 25 query processors, 100
// 4 KB cache frames, 2 IBM-3350-class data disks, and the 1..250-page,
// 20 %-update transaction load over a 24,000-page database.
func DefaultConfig() Config {
	return Config{
		QueryProcessors: 25,
		CacheFrames:     100,
		DataDisks:       2,
		Workload:        workload.DefaultConfig(24000),
		NumTxns:         40,
		MPL:             3,
		Seed:            1985,
		CPUPerPage:      sim.Ms(45),
		CPUPerUpdate:    sim.Ms(15),
		DiskParams:      disk.Default3350Params(),
		PagesPerTrack:   4,
		TracksPerCyl:    12,
	}
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.QueryProcessors <= 0:
		return fmt.Errorf("machine: need at least one query processor")
	case c.CacheFrames <= 0:
		return fmt.Errorf("machine: need at least one cache frame")
	case c.DataDisks <= 0:
		return fmt.Errorf("machine: need at least one data disk")
	case c.MPL <= 0:
		return fmt.Errorf("machine: MPL must be positive")
	case c.NumTxns <= 0:
		return fmt.Errorf("machine: no transactions to run")
	case c.CPUPerPage < 0 || c.CPUPerUpdate < 0:
		return fmt.Errorf("machine: negative CPU cost")
	case c.PagesPerTrack <= 0 || c.TracksPerCyl <= 0:
		return fmt.Errorf("machine: bad disk geometry")
	case c.AbortFrac < 0 || c.AbortFrac > 1:
		return fmt.Errorf("machine: abort fraction %v out of range", c.AbortFrac)
	}
	return c.Workload.Validate()
}

func (c Config) prefetchWindow() int {
	if c.PrefetchWindow > 0 {
		return c.PrefetchWindow
	}
	w := c.CacheFrames / c.MPL
	if w < 1 {
		w = 1
	}
	return w
}

// Result aggregates the statistics of one simulation run.
type Result struct {
	Name           string
	SimTime        sim.Time
	PagesProcessed int64 // pages read & processed plus updated pages written
	Committed      int
	Aborted        int
	LockWaits      int64

	// The paper's two metrics, in milliseconds.
	ExecPerPageMs    float64
	MeanCompletionMs float64

	// Completion-time percentiles from the metrics histogram (ms).
	CompletionP50Ms float64
	CompletionP95Ms float64
	CompletionP99Ms float64

	// Waits is the mean per-committed-transaction wait-time breakdown.
	Waits WaitBreakdown

	QPUtil           float64
	DataDiskUtil     float64 // mean across data disks
	DataDiskUtils    []float64
	DataDiskAccesses int64
	CacheHitRatio    float64 // residency-tracker hit ratio on data reads
	MeanBlocked      float64 // updated pages waiting for log records
	MaxBlocked       float64
	MeanCacheUsed    float64

	// Extra carries model-specific statistics (log-disk utilization,
	// page-table disk utilization, ...).
	Extra map[string]float64

	// Profile is the sampled utilization timeline (nil unless
	// Config.ProfileEvery was set).
	Profile *Profile
}

// WaitBreakdown is the mean per-transaction wait-time decomposition, in
// milliseconds of virtual time. Waits on concurrent requests overlap, so
// the components may sum to more than the mean completion time; each
// answers "how long did this kind of request take in aggregate".
type WaitBreakdown struct {
	LockMs     float64 // admission until the static lock set was granted
	QPMs       float64 // query-processor queueing across all plan entries
	DiskMs     float64 // data-disk queue + service across reads and writes
	RecoveryMs float64 // address resolution + blocked waiting for recovery data
	CommitMs   float64 // reads done until the commit/abort hook finished
}

// String renders the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf("%s: exec/page=%.1fms completion=%.1fms qp=%.2f disk=%.2f",
		r.Name, r.ExecPerPageMs, r.MeanCompletionMs, r.QPUtil, r.DataDiskUtil)
}
