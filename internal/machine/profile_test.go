package machine

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestProfileSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.ProfileEvery = sim.Ms(50)
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil || len(p.TimesMs) == 0 {
		t.Fatal("no profile collected")
	}
	if len(p.DiskBusy) != len(p.TimesMs) || len(p.QPBusy) != len(p.TimesMs) ||
		len(p.CacheUsed) != len(p.TimesMs) || len(p.Blocked) != len(p.TimesMs) {
		t.Fatal("ragged profile series")
	}
	for i, v := range p.DiskBusy {
		if v < 0 || v > 1 {
			t.Fatalf("disk busy[%d] = %v", i, v)
		}
	}
	// The random configuration keeps its disks busy most of the time.
	if m := Mean(p.DiskBusy); m < 0.5 {
		t.Fatalf("mean sampled disk busy %.2f, expected I/O bound", m)
	}
	// Samples stop when the run ends (+ at most one trailing tick).
	last := p.TimesMs[len(p.TimesMs)-1]
	if last > res.SimTime.ToMs()+cfg.ProfileEvery.ToMs() {
		t.Fatalf("sampling ran past the workload: %v vs %v", last, res.SimTime.ToMs())
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	res, err := Run(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("profile collected without ProfileEvery")
	}
}

func TestProfileRender(t *testing.T) {
	p := &Profile{
		SampleEvery: sim.Ms(10),
		TimesMs:     []float64{10, 20, 30, 40},
		DiskBusy:    []float64{0, 0.5, 1, 0.5},
		QPBusy:      []float64{0.1, 0.2, 0.3, 0.4},
		CacheUsed:   []float64{1, 1, 1, 1},
		Blocked:     []float64{0, 5, 10, 0},
	}
	out := p.Render(40)
	for _, want := range []string{"data disks", "query procs", "cache used", "blocked pgs", "peak 10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	empty := (&Profile{}).Render(10)
	if !strings.Contains(empty, "no samples") {
		t.Fatalf("empty render: %q", empty)
	}
}

func TestCondense(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5, 7, 7}
	out := condense(in, 4)
	if len(out) != 4 || out[0] != 1 || out[1] != 3 || out[2] != 5 || out[3] != 7 {
		t.Fatalf("condensed = %v", out)
	}
	same := condense(in, 100)
	if len(same) != len(in) {
		t.Fatal("short series should pass through")
	}
}

func TestCondenseEdgeCases(t *testing.T) {
	if out := condense(nil, 4); len(out) != 0 {
		t.Fatalf("condense(nil) = %v, want empty", out)
	}
	if out := condense([]float64{}, 0); len(out) != 0 {
		t.Fatalf("condense(empty, 0) = %v, want empty", out)
	}
	if out := condense([]float64{1, 2}, 0); len(out) != 0 {
		t.Fatalf("condense(2 into 0) = %v, want empty", out)
	}
	// Fewer samples than buckets: passthrough, not padding.
	short := []float64{2, 4}
	if out := condense(short, 5); len(out) != 2 || out[0] != 2 || out[1] != 4 {
		t.Fatalf("condense(short, 5) = %v, want passthrough", out)
	}
	// Uneven split: 5 samples into 2 buckets -> [mean(1,2), mean(3,4,5)].
	out := condense([]float64{1, 2, 3, 4, 5}, 2)
	if len(out) != 2 || out[0] != 1.5 || out[1] != 4 {
		t.Fatalf("condense(5 into 2) = %v, want [1.5 4]", out)
	}
	// n=1 averages everything.
	if out := condense([]float64{1, 2, 3, 4, 5}, 1); len(out) != 1 || out[0] != 3 {
		t.Fatalf("condense(5 into 1) = %v, want [3]", out)
	}
}

func TestSparkClamps(t *testing.T) {
	s := spark([]float64{-1, 0, 0.5, 1, 2}, 1)
	if len([]rune(s)) != 5 {
		t.Fatalf("spark length: %q", s)
	}
	r := []rune(s)
	if r[0] != sparkRunes[0] || r[4] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("clamping wrong: %q", s)
	}
}

func TestSparkDegenerateScale(t *testing.T) {
	// A zero or negative scale (e.g. an all-zero series normalized by its
	// peak) must not divide to NaN/±Inf or index out of range.
	for _, scale := range []float64{0, -3} {
		s := spark([]float64{0, 0.5, 1, 100}, scale)
		r := []rune(s)
		if len(r) != 4 {
			t.Fatalf("spark(scale=%v) length %d: %q", scale, len(r), s)
		}
		for i, c := range r {
			valid := false
			for _, k := range sparkRunes {
				if c == k {
					valid = true
					break
				}
			}
			if !valid {
				t.Fatalf("spark(scale=%v)[%d] = %q, not a spark rune", scale, i, c)
			}
		}
	}
	// NaN samples render as the lowest bar instead of panicking.
	s := spark([]float64{math.NaN(), 1}, 1)
	if r := []rune(s); r[0] != sparkRunes[0] {
		t.Fatalf("NaN sample rendered %q, want %q", r[0], sparkRunes[0])
	}
}

func TestMeanMatchesSimSeriesMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != sim.SeriesMean(xs) || Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", Mean(nil))
	}
}
