package machine_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/recovery/logging"
)

// Example simulates the paper's standard machine twice — bare and with
// parallel logging — and shows the throughput effect (none, the paper's
// headline result for logging).
func Example() {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 10
	cfg.Workload.MaxPages = 60

	bare, err := machine.Run(cfg, nil)
	if err != nil {
		panic(err)
	}
	logged, err := machine.Run(cfg, logging.New(logging.Config{}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("bare committed:    %d\n", bare.Committed)
	fmt.Printf("logging committed: %d\n", logged.Committed)
	fmt.Printf("throughput within 10%%: %v\n",
		logged.ExecPerPageMs < bare.ExecPerPageMs*1.1)
	// Output:
	// bare committed:    10
	// logging committed: 10
	// throughput within 10%: true
}

// ExampleConfig_Validate shows configuration validation.
func ExampleConfig_Validate() {
	cfg := machine.DefaultConfig()
	cfg.DataDisks = 0
	fmt.Println(cfg.Validate())
	// Output:
	// machine: need at least one data disk
}
