package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

func TestSimulateFacade(t *testing.T) {
	cfg := MachineConfig()
	cfg.NumTxns = 8
	cfg.Workload.MaxPages = 50
	for _, m := range []machine.Model{
		Bare(),
		ParallelLogging(logging.Config{}),
		ShadowPageTable(shadow.Config{}),
		ShadowVersionSelection(shadow.Config{}),
		ShadowOverwriting(shadow.Config{}, true),
		ShadowOverwriting(shadow.Config{}, false),
		DifferentialFiles(difffile.Config{}),
	} {
		res, err := Simulate(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != cfg.NumTxns {
			t.Fatalf("%s: committed %d", res.Name, res.Committed)
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	tab, err := Experiment("table2", experiments.Options{NumTxns: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(ExperimentIDs()) != 22 {
		t.Fatalf("ids = %v", ExperimentIDs())
	}
}

func TestEngineFacades(t *testing.T) {
	shadowEng, err := ShadowEngine()
	if err != nil {
		t.Fatal(err)
	}
	vsEng, err := VersionSelectEngine()
	if err != nil {
		t.Fatal(err)
	}
	engines := []*engine.Engine{
		WALEngine(wal.Config{Streams: 2}),
		shadowEng,
		OverwriteEngine(shadoweng.NoUndo),
		OverwriteEngine(shadoweng.NoRedo),
		vsEng,
		DiffEngine(),
	}
	for _, e := range engines {
		if err := e.Load(1, []byte("x")); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := e.Update(func(tx *engine.Txn) error { return tx.Write(1, []byte("y")) }); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		e.Crash()
		if err := e.Recover(); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got, err := e.ReadCommitted(1)
		if err != nil || string(got) != "y" {
			t.Fatalf("%s: %q %v", e.Name(), got, err)
		}
	}
}
