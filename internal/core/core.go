// Package core is the top-level facade of the repository: it re-exports the
// two halves of the reproduction behind a small, stable surface.
//
// Simulation half (the paper's evaluation): configure a multiprocessor
// database machine, attach a recovery architecture, run a transaction load,
// and read back the paper's metrics — or regenerate any of the paper's
// twelve tables directly.
//
//	res, err := core.Simulate(core.MachineConfig(), core.ParallelLogging(logging.Config{}))
//	tab, err := core.Experiment("table12", experiments.Options{})
//
// Functional half (real recovery): build a transactional engine over any of
// the recovery architectures and run real transactions with page locking,
// crash injection and restart recovery.
//
//	eng := core.WALEngine(wal.Config{Streams: 4})
//	err := eng.Update(func(tx *engine.Txn) error { return tx.Write(1, data) })
package core

import (
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// MachineConfig returns the paper's standard database machine configuration
// (25 query processors, 100 cache frames, 2 data disks, the 1..250-page
// transaction load).
func MachineConfig() machine.Config { return machine.DefaultConfig() }

// Simulate runs one simulated transaction load on the machine described by
// cfg under the given recovery model (nil = bare machine) and returns the
// paper's metrics.
func Simulate(cfg machine.Config, model machine.Model) (*machine.Result, error) {
	return machine.Run(cfg, model)
}

// Bare returns the no-recovery baseline model.
func Bare() machine.Model { return nil }

// ParallelLogging returns the parallel-logging recovery architecture
// (Section 3.1).
func ParallelLogging(cfg logging.Config) machine.Model { return logging.New(cfg) }

// ShadowPageTable returns the thru-page-table shadow architecture
// (Section 3.2.1).
func ShadowPageTable(cfg shadow.Config) machine.Model { return shadow.NewPageTable(cfg) }

// ShadowVersionSelection returns the version-selection shadow architecture
// (Section 3.2.2.1).
func ShadowVersionSelection(cfg shadow.Config) machine.Model { return shadow.NewVersion(cfg) }

// ShadowOverwriting returns an overwriting shadow architecture
// (Section 3.2.2.2); noUndo selects the no-undo variant.
func ShadowOverwriting(cfg shadow.Config, noUndo bool) machine.Model {
	return shadow.NewOverwrite(cfg, noUndo)
}

// DifferentialFiles returns the differential-file recovery architecture
// (Section 3.3).
func DifferentialFiles(cfg difffile.Config) machine.Model { return difffile.New(cfg) }

// Experiment regenerates one of the paper's evaluation tables ("table1"
// through "table12", or "bandwidth").
func Experiment(id string, opt experiments.Options) (*experiments.Table, error) {
	return experiments.Run(id, opt)
}

// ExperimentIDs lists the available experiments in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// WALEngine returns a functional transactional engine recovered by parallel
// write-ahead logging.
func WALEngine(cfg wal.Config) *engine.Engine { return engine.NewWAL(cfg) }

// ShadowEngine returns a functional transactional engine recovered by
// canonical shadow paging.
func ShadowEngine() (*engine.Engine, error) { return engine.NewShadow() }

// OverwriteEngine returns a functional transactional engine recovered by an
// overwriting shadow architecture.
func OverwriteEngine(variant shadoweng.Variant) *engine.Engine {
	return engine.NewOverwrite(variant)
}

// VersionSelectEngine returns a functional transactional engine recovered by
// version selection.
func VersionSelectEngine() (*engine.Engine, error) { return engine.NewVersionSelect() }

// DiffEngine returns a functional transactional engine recovered by
// differential files.
func DiffEngine() *engine.Engine { return engine.NewDiff() }
