# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test race cover bench gobench tables examples fuzz ci clean
.PHONY: crashsweep crashsweep-short crashsweep-file serve-smoke bench-server

all: build vet lint test

# What .github/workflows/ci.yml runs.
ci: build vet lint test race cover crashsweep-short crashsweep-file serve-smoke

# Deterministic crash-injection sweep with recovery audits
# (see internal/faultinj and docs/FAULTS.md).
crashsweep:
	$(GO) run ./cmd/crashsweep

# Bounded sweep for CI: every 2nd crash point, fewer machine instants —
# still several hundred audited points, and it runs in seconds. -jobs 4
# exercises the parallel fan-out; the report is byte-identical to -jobs 1.
crashsweep-short:
	$(GO) run ./cmd/crashsweep -every 2 -machine-points 4 -jobs 4

# File-backed sweep for CI: the same crash/recover/audit cycle on real
# storage (internal/pagestore/filestore) — power cuts, torn writes, and
# lost fsyncs injected at every 5th file operation of all seven
# architectures. The full file sweep is `crashsweep -file -every 1`
# (2504 points); this bounded one still covers every fault kind on
# every engine in a few seconds. Scratch dirs live under a temp dir
# crashsweep creates and removes itself.
crashsweep-file:
	$(GO) run ./cmd/crashsweep -file -every 5 -machine-points 0 -jobs 4 \
		-report crashsweep-file-report.txt

# simlint: the repo's determinism & simulator-invariant analyzer
# (stdlib-only, built from source; see docs/LINTING.md). The wall time is
# printed so the CI log pins the cost of the call-graph passes — the
# budget is ~2s on the 1-core CI container.
lint:
	@start=$$(date +%s%N); \
	$(GO) run ./cmd/simlint ./internal/... ./cmd/...; rc=$$?; \
	end=$$(date +%s%N); \
	printf 'simlint: wall time %d.%03ds\n' \
		$$(( (end - start) / 1000000000 )) $$(( (end - start) / 1000000 % 1000 )); \
	exit $$rc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage over the recovery kernels (internal/wal, internal/shadoweng,
# internal/diffeng) and their thread-safe wrapper (internal/engine), as
# exercised by the kernel, engine, and fault-injection test suites. The
# merged total is gated at COVER_MIN percent.
COVER_MIN ?= 88
COVER_PKGS = ./internal/wal,./internal/shadoweng,./internal/diffeng,./internal/engine

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=$(COVER_PKGS) \
		./internal/wal ./internal/shadoweng ./internal/diffeng \
		./internal/engine ./internal/faultinj
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { pct = $$3; sub(/%/, "", pct); \
		 printf "recovery-kernel coverage: %s (minimum %d%%)\n", $$3, min; \
		 if (pct + 0 < min) { print "FAIL: coverage below minimum"; exit 1 } }'

# Runpool scaling benchmark (table regeneration + crash sweep at jobs=1
# vs jobs=4, byte-compared -> BENCH_runpool.json) followed by the Guard
# mutex contention profile (per-op wait/hold percentiles over worker
# counts -> BENCH_guard_contention.json) and the concurrency-envelope
# scaling curve (plain vs group-commit vs striped-read ->
# BENCH_guard.json; see docs/OBSERVABILITY.md). The committed files
# record gomaxprocs — regenerate on a multi-core machine for meaningful
# speedups.
bench:
	$(GO) run ./cmd/dbbench -out BENCH_runpool.json \
		-guard-out BENCH_guard_contention.json
	$(GO) run ./cmd/dbbench -guardscale -guardscale-out BENCH_guard.json

# Short end-to-end smoke of the networked front end: dbload self-hosts an
# in-process dbserver per architecture, drives concurrent debit/credit
# sessions over TCP, and fails on any balance drift. Small enough for CI;
# the report goes to stdout and the JSON is discarded.
serve-smoke:
	$(GO) run ./cmd/dbload -engines all -sessions 25 -txns 2 -pages 32 -out ""

# Full server benchmark: 1000 concurrent sessions per architecture
# against a self-hosted dbserver, closed loop -> BENCH_server.json
# (throughput + latency percentiles; see docs/OBSERVABILITY.md).
bench-server:
	$(GO) run ./cmd/dbload -engines all -sessions 1000 -txns 3 -pages 256 \
		-out BENCH_server.json

# Go's own microbenchmarks.
gobench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table of the paper (plus the extension studies).
tables:
	$(GO) run ./cmd/dbmsim -table all

# Run every example application.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/parallellog
	$(GO) run ./examples/comparison
	$(GO) run ./examples/hotspot
	$(GO) run ./examples/hypothetical
	$(GO) run ./examples/debitcredit

# Short runs of the native fuzz targets.
fuzz:
	$(GO) test -run xxx -fuzz FuzzUnmarshalRecord -fuzztime 10s ./internal/wal/
	$(GO) test -run xxx -fuzz FuzzDecodePage -fuzztime 10s ./internal/relation/
	$(GO) test -run xxx -fuzz FuzzDecodeTuple -fuzztime 10s ./internal/relation/

clean:
	rm -rf internal/*/testdata/fuzz
	rm -f cover.out
