// Package repro's benchmark harness: one testing.B benchmark per table of
// the paper's evaluation (Tables 1-12) plus the Section 4.1.3 bandwidth
// study, and microbenchmarks of the functional recovery engines. Each table
// benchmark regenerates the full table per iteration (at a reduced
// transaction load so the suite completes quickly); run with
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/debitcredit"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/pagestore"
	"repro/internal/recovery/logging"
	"repro/internal/relation"
	"repro/internal/shadoweng"
	"repro/internal/sim"
	"repro/internal/wal"
)

// benchOpt keeps table regeneration fast; shapes are unchanged.
var benchOpt = experiments.Options{NumTxns: 8}

func benchTable(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable01 regenerates Table 1 (impact of logging).
func BenchmarkTable01(b *testing.B) { benchTable(b, "table1") }

// BenchmarkTable02 regenerates Table 2 (log disk utilization).
func BenchmarkTable02(b *testing.B) { benchTable(b, "table2") }

// BenchmarkTable03 regenerates Table 3 (parallel physical logging sweep).
func BenchmarkTable03(b *testing.B) { benchTable(b, "table3") }

// BenchmarkTable04 regenerates Table 4 (shadow mechanism impact).
func BenchmarkTable04(b *testing.B) { benchTable(b, "table4") }

// BenchmarkTable05 regenerates Table 5 (data/page-table disk utilization).
func BenchmarkTable05(b *testing.B) { benchTable(b, "table5") }

// BenchmarkTable06 regenerates Table 6 (page-table buffer size).
func BenchmarkTable06(b *testing.B) { benchTable(b, "table6") }

// BenchmarkTable07 regenerates Table 7 (sequential placement/overwriting).
func BenchmarkTable07(b *testing.B) { benchTable(b, "table7") }

// BenchmarkTable08 regenerates Table 8 (random thru-PT vs overwriting).
func BenchmarkTable08(b *testing.B) { benchTable(b, "table8") }

// BenchmarkTable09 regenerates Table 9 (differential file impact).
func BenchmarkTable09(b *testing.B) { benchTable(b, "table9") }

// BenchmarkTable10 regenerates Table 10 (output fraction).
func BenchmarkTable10(b *testing.B) { benchTable(b, "table10") }

// BenchmarkTable11 regenerates Table 11 (differential file size).
func BenchmarkTable11(b *testing.B) { benchTable(b, "table11") }

// BenchmarkTable12 regenerates Table 12 (grand comparison).
func BenchmarkTable12(b *testing.B) { benchTable(b, "table12") }

// BenchmarkBandwidth regenerates the Section 4.1.3 interconnect study.
func BenchmarkBandwidth(b *testing.B) { benchTable(b, "bandwidth") }

// BenchmarkBareMachine measures one bare-machine simulation per iteration
// per configuration (the ablation baseline for everything else).
func BenchmarkBareMachine(b *testing.B) {
	for _, c := range []struct {
		name     string
		seq, par bool
	}{
		{"ConvRandom", false, false},
		{"ParSeq", true, true},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.NumTxns = 8
			cfg.Workload.Sequential = c.seq
			cfg.ParallelDisks = c.par
			for i := 0; i < b.N; i++ {
				if _, err := machine.Run(cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogProcessorSelection ablates the four selection algorithms on
// the Table 3 machine (one simulation per iteration).
func BenchmarkLogProcessorSelection(b *testing.B) {
	for _, sel := range []logging.Selection{logging.Cyclic, logging.Random, logging.QpNoMod, logging.TranNoMod} {
		sel := sel
		b.Run(sel.String(), func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.QueryProcessors = 75
			cfg.CacheFrames = 150
			cfg.ParallelDisks = true
			cfg.Workload.Sequential = true
			cfg.NumTxns = 8
			for i := 0; i < b.N; i++ {
				_, err := machine.Run(cfg, logging.New(logging.Config{
					Mode: logging.Physical, LogProcessors: 3, Selection: sel,
				}))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALStreams measures functional commit throughput as the number
// of parallel log streams grows — the functional analogue of Table 3.
func BenchmarkWALStreams(b *testing.B) {
	for _, streams := range []int{1, 2, 4, 8} {
		streams := streams
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			e := engine.NewWAL(wal.Config{Streams: streams, Selection: wal.PageMod})
			for p := int64(0); p < 64; p++ {
				if err := e.Load(p, make([]byte, 256)); err != nil {
					b.Fatal(err)
				}
			}
			buf := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := e.Update(func(tx *engine.Txn) error {
					return tx.Write(int64(i%64), buf)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCommit compares the per-commit cost of every functional
// recovery engine on an identical single-page update.
func BenchmarkEngineCommit(b *testing.B) {
	builders := []struct {
		name  string
		build func() (*engine.Engine, error)
	}{
		{"wal", func() (*engine.Engine, error) { return engine.NewWAL(wal.Config{}), nil }},
		{"shadow", func() (*engine.Engine, error) { return engine.NewShadow() }},
		{"ow-noundo", func() (*engine.Engine, error) { return engine.NewOverwrite(shadoweng.NoUndo), nil }},
		{"ow-noredo", func() (*engine.Engine, error) { return engine.NewOverwrite(shadoweng.NoRedo), nil }},
		{"verselect", func() (*engine.Engine, error) { return engine.NewVersionSelect() }},
		{"difffile", func() (*engine.Engine, error) { return engine.NewDiff(), nil }},
	}
	for _, bb := range builders {
		bb := bb
		b.Run(bb.name, func(b *testing.B) {
			e, err := bb.build()
			if err != nil {
				b.Fatal(err)
			}
			for p := int64(0); p < 16; p++ {
				if err := e.Load(p, make([]byte, 256)); err != nil {
					b.Fatal(err)
				}
			}
			buf := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := e.Update(func(tx *engine.Txn) error {
					return tx.Write(int64(i%16), buf)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiffViewScan compares the basic and optimal differential-file
// query strategies on the tuple-level relation layer — the functional
// analogue of Table 9's CPU cost gap.
func BenchmarkDiffViewScan(b *testing.B) {
	for _, strat := range []relation.Strategy{relation.Basic, relation.Optimal} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			e := engine.NewWAL(wal.Config{})
			for p := int64(0); p < 48; p++ {
				if err := e.Load(p, nil); err != nil {
					b.Fatal(err)
				}
			}
			v := relation.NewDiffView("bench", 0, 16, 16)
			err := e.Update(func(tx *engine.Txn) error {
				for i := int64(0); i < 300; i++ {
					if err := v.B.Insert(tx, relation.Tuple{Key: i, Value: "xxxxxxxxxxxx"}); err != nil {
						return err
					}
				}
				for i := int64(0); i < 30; i++ {
					if err := v.Update(tx, i*7, "updated"); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			pred := func(t relation.Tuple) bool { return t.Key == 42 }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := e.Update(func(tx *engine.Txn) error {
					_, err := v.Scan(tx, pred, strat)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScan measures the goroutine-query-processor scan at
// several worker counts.
func BenchmarkParallelScan(b *testing.B) {
	e := engine.NewWAL(wal.Config{})
	for p := int64(0); p < 64; p++ {
		if err := e.Load(p, nil); err != nil {
			b.Fatal(err)
		}
	}
	r := relation.New("bench", 0, 64)
	err := e.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < 2000; i++ {
			if err := r.Insert(tx, relation.Tuple{Key: i, Value: "xxxxxxxxxxxxxxxx"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	pred := func(t relation.Tuple) bool { return t.Key%5 == 0 }
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tx, err := e.Begin()
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = tx.Commit() }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relation.ParallelScan(tx, r, pred, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDebitCredit measures the 1985 DebitCredit transaction on each
// functional recovery engine (4 concurrent tellers).
func BenchmarkDebitCredit(b *testing.B) {
	builders := []struct {
		name  string
		build func() (*engine.Engine, error)
	}{
		{"wal", func() (*engine.Engine, error) {
			return engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod, PoolPages: 16}), nil
		}},
		{"shadow", func() (*engine.Engine, error) { return engine.NewShadow() }},
		{"difffile", func() (*engine.Engine, error) { return engine.NewDiff(), nil }},
	}
	for _, bb := range builders {
		bb := bb
		b.Run(bb.name, func(b *testing.B) {
			e, err := bb.build()
			if err != nil {
				b.Fatal(err)
			}
			bank, err := debitcredit.New(e, debitcredit.Config{HistoryPages: 4096})
			if err != nil {
				b.Fatal(err)
			}
			rng := sim.NewRNG(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bank.Transact(rng, int64(i%20), int64(i%97)-48); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures restart-recovery time after a workload, per
// engine (the cost the paper trades against normal-case efficiency).
func BenchmarkRecovery(b *testing.B) {
	b.Run("wal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := pagestore.New(4096)
			e, _ := engine.NewWALOn(store, wal.Config{Streams: 2, PoolPages: 8})
			for p := int64(0); p < 32; p++ {
				if err := e.Load(p, make([]byte, 256)); err != nil {
					b.Fatal(err)
				}
			}
			for j := 0; j < 100; j++ {
				if err := e.Update(func(tx *engine.Txn) error {
					return tx.Write(int64(j%32), make([]byte, 256))
				}); err != nil {
					b.Fatal(err)
				}
			}
			e.Crash()
			b.StartTimer()
			if err := e.Recover(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shadow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, err := engine.NewShadow()
			if err != nil {
				b.Fatal(err)
			}
			for p := int64(0); p < 32; p++ {
				if err := e.Load(p, make([]byte, 256)); err != nil {
					b.Fatal(err)
				}
			}
			for j := 0; j < 100; j++ {
				if err := e.Update(func(tx *engine.Txn) error {
					return tx.Write(int64(j%32), make([]byte, 256))
				}); err != nil {
					b.Fatal(err)
				}
			}
			e.Crash()
			b.StartTimer()
			if err := e.Recover(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
