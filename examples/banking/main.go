// Banking: a concurrent account-transfer workload on the functional WAL
// engine, with a power failure injected mid-run. Demonstrates page-level
// two-phase locking, deadlock-victim retry, steal/no-force buffering, and
// restart recovery — total money is conserved through the crash.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/engine"
	"repro/internal/pagestore"
	"repro/internal/wal"
)

const (
	accounts       = 16
	initialBalance = 1_000
	workers        = 8
	transfersEach  = 200
)

func enc(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func dec(b []byte) int64 { return int64(binary.BigEndian.Uint64(b)) }

func total(e *engine.Engine) int64 {
	var sum int64
	for a := int64(0); a < accounts; a++ {
		v, err := e.ReadCommitted(a)
		if err != nil {
			log.Fatal(err)
		}
		sum += dec(v)
	}
	return sum
}

func main() {
	store := pagestore.New(4096)
	eng, mgr := engine.NewWALOn(store, wal.Config{Streams: 4, Selection: wal.PageMod, PoolPages: 8})
	for a := int64(0); a < accounts; a++ {
		if err := eng.Load(a, enc(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bank open: %d accounts x %d = %d total\n",
		accounts, initialBalance, total(eng))

	// Concurrent transfers; locks are taken in whatever order the transfer
	// needs, so deadlocks happen and are retried.
	var wg sync.WaitGroup
	var transferred, failed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfersEach; i++ {
				from := int64((w*7 + i*3) % accounts)
				to := int64((w*11 + i*5 + 1) % accounts)
				if from == to {
					continue
				}
				err := eng.Update(func(tx *engine.Txn) error {
					vf, err := tx.Read(from)
					if err != nil {
						return err
					}
					if dec(vf) < 10 {
						return nil // insufficient funds; commit empty
					}
					vt, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, enc(dec(vf)-10)); err != nil {
						return err
					}
					return tx.Write(to, enc(dec(vt)+10))
				})
				mu.Lock()
				if err != nil {
					failed++
				} else {
					transferred++
				}
				mu.Unlock()
				if err != nil && !errors.Is(err, engine.ErrDeadlock) {
					return // store crashed under us
				}
			}
		}()
	}
	wg.Wait()

	commits, aborts, deadlocks := eng.Stats()
	fmt.Printf("ran %d transfers (%d failed) — %d commits, %d aborts, %d deadlock victims retried\n",
		transferred, failed, commits, aborts, deadlocks)
	fmt.Printf("balance before crash: %d\n", total(eng))

	// Leave one transfer in flight — it must be rolled back at restart.
	dangling, err := eng.Begin()
	if err != nil {
		log.Fatal(err)
	}
	v0, _ := dangling.Read(0)
	if err := dangling.Write(0, enc(dec(v0)-500)); err != nil {
		log.Fatal(err)
	}
	// Force the dirty page to disk so recovery has real undo work: touch
	// enough pages to evict it from the 8-page buffer pool.
	for a := int64(1); a < 10; a++ {
		if _, err := dangling.Read(a); err != nil {
			log.Fatal(err)
		}
	}

	// Pull the plug: buffer pool, lock table and unforced log tails vanish.
	fmt.Println("\n*** POWER FAILURE *** (one transfer of 500 still in flight)")
	eng.Crash()

	if err := eng.Recover(); err != nil {
		log.Fatal(err)
	}
	stats := mgr.Stats()
	fmt.Printf("restart recovery: %d records redone, %d undone across %d parallel log streams\n",
		stats["redone"], stats["undone"], 4)
	after := total(eng)
	fmt.Printf("balance after recovery: %d\n", after)
	if after != accounts*initialBalance {
		log.Fatalf("MONEY NOT CONSERVED: %d != %d", after, accounts*initialBalance)
	}
	fmt.Println("invariant holds: every committed transfer survived, every loser rolled back")
}
