// Debitcredit: the 1985 DebitCredit benchmark ("A Measure of Transaction
// Processing Power" — the TP workload of the paper's era) run against every
// functional recovery engine in this repository, with a power failure in
// the middle. Each engine must keep the classic invariant — the account,
// teller and branch balance sums agree, and the history file has exactly
// one record per committed transaction — through concurrency and crash.
package main

import (
	"fmt"
	"log"

	"repro/internal/debitcredit"
	"repro/internal/engine"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

func main() {
	shadow, err := engine.NewShadow()
	if err != nil {
		log.Fatal(err)
	}
	vs, err := engine.NewVersionSelect()
	if err != nil {
		log.Fatal(err)
	}
	engines := []*engine.Engine{
		engine.NewWAL(wal.Config{Streams: 4, Selection: wal.PageMod, PoolPages: 16}),
		shadow,
		engine.NewOverwrite(shadoweng.NoUndo),
		engine.NewOverwrite(shadoweng.NoRedo),
		vs,
		engine.NewDiff(),
	}
	cfg := debitcredit.Config{Branches: 4, AccountsPerBranch: 100}
	for _, eng := range engines {
		bank, err := debitcredit.New(eng, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := bank.Run(200, 4); err != nil {
			log.Fatalf("%s: %v", eng.Name(), err)
		}
		eng.Crash()
		if err := eng.Recover(); err != nil {
			log.Fatalf("%s: recover: %v", eng.Name(), err)
		}
		if err := bank.ResyncAfterRecovery(); err != nil {
			log.Fatalf("%s: resync: %v", eng.Name(), err)
		}
		if err := bank.Verify(); err != nil {
			log.Fatalf("%s: INVARIANT BROKEN: %v", eng.Name(), err)
		}
		commits, remote := bank.Stats()
		fmt.Printf("%-28s %d transactions (%d remote-branch), crash survived, invariants hold\n",
			eng.Name(), commits, remote)
	}
}
