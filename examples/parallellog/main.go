// Parallellog: the paper's headline idea — collecting recovery data in
// parallel on multiple log processors — demonstrated on both halves of this
// repository.
//
// First the simulation: the Table 3 machine (75 query processors, parallel-
// access data disks, physical logging) swept over 1..5 log disks and the
// four log-processor selection algorithms.
//
// Then the functional engine: real transactions against the WAL engine with
// 1..4 parallel log streams, showing that recovery merges the distributed
// streams correctly no matter how the records were scattered.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/recovery/logging"
	"repro/internal/wal"
)

func main() {
	simulated()
	functional()
}

func simulated() {
	fmt.Println("== simulated: physical logging on the Table 3 machine ==")
	cfg := machine.DefaultConfig()
	cfg.QueryProcessors = 75
	cfg.CacheFrames = 150
	cfg.ParallelDisks = true
	cfg.Workload.Sequential = true
	cfg.NumTxns = 16

	bare, err := machine.Run(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %8s %10s\n", "log disks", "ms/page", "completion")
	fmt.Printf("%-12s %8.1f %10.1f\n", "none", bare.ExecPerPageMs, bare.MeanCompletionMs)
	for n := 1; n <= 5; n++ {
		res, err := machine.Run(cfg, logging.New(logging.Config{
			Mode:          logging.Physical,
			LogProcessors: n,
		}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %8.1f %10.1f\n", n, res.ExecPerPageMs, res.MeanCompletionMs)
	}

	fmt.Println("\nselection algorithms with 5 log disks:")
	for _, sel := range []logging.Selection{logging.Cyclic, logging.Random, logging.QpNoMod, logging.TranNoMod} {
		res, err := machine.Run(cfg, logging.New(logging.Config{
			Mode:          logging.Physical,
			LogProcessors: 5,
			Selection:     sel,
		}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %6.1f ms/page\n", sel, res.ExecPerPageMs)
	}
}

func functional() {
	fmt.Println("\n== functional: WAL engine with parallel log streams ==")
	for _, streams := range []int{1, 2, 4} {
		eng := engine.NewWAL(wal.Config{Streams: streams, Selection: wal.Cyclic})
		for p := int64(0); p < 32; p++ {
			if err := eng.Load(p, []byte("initial")); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			i := i
			err := eng.Update(func(tx *engine.Txn) error {
				return tx.Write(int64(i%32), []byte(fmt.Sprintf("update-%d", i)))
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		eng.Crash()
		if err := eng.Recover(); err != nil {
			log.Fatal(err)
		}
		got, err := eng.ReadCommitted(int64(199 % 32))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d stream(s): 200 commits scattered, recovered; last page = %q\n",
			streams, got)
	}
	fmt.Println("recovery never merges the streams into one physical log — only by LSN at restart,")
	fmt.Println("exactly as the paper's parallel logging architecture prescribes.")
}
