// Comparison: the paper's bottom line (Table 12) regenerated on a custom
// machine, followed by a crash drill across every functional recovery
// engine — the same application survives a power failure under all six
// architectures.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

func main() {
	simulatedComparison()
	functionalDrill()
}

func simulatedComparison() {
	fmt.Println("== simulated: all recovery architectures on a custom machine ==")
	// A beefier machine than the paper's: 50 query processors, 4 data
	// disks, 200 frames.
	cfg := machine.DefaultConfig()
	cfg.QueryProcessors = 50
	cfg.DataDisks = 4
	cfg.CacheFrames = 200
	cfg.MPL = 4
	cfg.NumTxns = 16

	models := []struct {
		name  string
		model machine.Model
	}{
		{"bare machine", nil},
		{"parallel logging", logging.New(logging.Config{})},
		{"shadow thru-PT", shadow.NewPageTable(shadow.Config{})},
		{"shadow scrambled", shadow.NewPageTable(shadow.Config{Scrambled: true})},
		{"version selection", shadow.NewVersion(shadow.Config{})},
		{"overwrite no-undo", shadow.NewOverwrite(shadow.Config{}, true)},
		{"differential files", difffile.New(difffile.Config{})},
	}
	fmt.Printf("%-20s %10s %12s %8s %8s\n", "architecture", "ms/page", "completion", "qp util", "disk")
	for _, m := range models {
		res, err := machine.Run(cfg, m.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.1f %12.1f %8.2f %8.2f\n",
			m.name, res.ExecPerPageMs, res.MeanCompletionMs, res.QPUtil, res.DataDiskUtil)
	}

	// And the paper's own Table 12 at reduced scale:
	fmt.Println("\npaper's Table 12 (reduced load):")
	tab, err := core.Experiment("table12", experiments.Options{NumTxns: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
}

func functionalDrill() {
	fmt.Println("== functional: the same crash drill under every engine ==")
	shadowEng, err := engine.NewShadow()
	if err != nil {
		log.Fatal(err)
	}
	vsEng, err := engine.NewVersionSelect()
	if err != nil {
		log.Fatal(err)
	}
	engines := []*engine.Engine{
		engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod}),
		shadowEng,
		engine.NewOverwrite(shadoweng.NoUndo),
		engine.NewOverwrite(shadoweng.NoRedo),
		vsEng,
		engine.NewDiff(),
	}
	for _, e := range engines {
		if err := e.Load(1, []byte("before")); err != nil {
			log.Fatal(err)
		}
		// One committed update, one in-flight loser, then power failure.
		if err := e.Update(func(tx *engine.Txn) error {
			return tx.Write(1, []byte("committed"))
		}); err != nil {
			log.Fatal(err)
		}
		loser, err := e.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := loser.Write(1, []byte("loser")); err != nil {
			log.Fatal(err)
		}
		e.Crash()
		if err := e.Recover(); err != nil {
			log.Fatal(err)
		}
		got, err := e.ReadCommitted(1)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if string(got) != "committed" {
			status = fmt.Sprintf("FAILED (%q)", got)
		}
		fmt.Printf("  %-28s %s\n", e.Name(), status)
	}
}
