// Quickstart: simulate the paper's database machine with and without
// parallel logging and print the two headline metrics, then regenerate the
// paper's Table 2 — all through the public core facade.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/recovery/logging"
)

func main() {
	// The paper's standard machine: 25 query processors, 100 cache frames,
	// 2 data disks, transactions of 1..250 pages updating 20% of what they
	// read. Scaled to 12 transactions so the example runs instantly.
	cfg := core.MachineConfig()
	cfg.NumTxns = 12

	bare, err := core.Simulate(cfg, core.Bare())
	if err != nil {
		log.Fatal(err)
	}
	logged, err := core.Simulate(cfg, core.ParallelLogging(logging.Config{LogProcessors: 1}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Conventional disks, random transactions:")
	fmt.Printf("  bare machine:     %6.1f ms/page, %8.1f ms completion\n",
		bare.ExecPerPageMs, bare.MeanCompletionMs)
	fmt.Printf("  parallel logging: %6.1f ms/page, %8.1f ms completion (log disk %.0f%% busy)\n",
		logged.ExecPerPageMs, logged.MeanCompletionMs, logged.Extra["log.diskUtil"]*100)
	fmt.Println()

	// Any of the paper's tables can be regenerated directly.
	tab, err := core.Experiment("table2", experiments.Options{NumTxns: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
}
