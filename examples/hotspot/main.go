// Hotspot: what the paper leaves open — hot-spot (Zipf) workloads — studied
// on both halves of the repository. The simulated machine shows lock waits
// climbing as skew concentrates accesses; the functional WAL engine shows a
// real hot page serializing writers (with deadlocks broken and retried) yet
// still recovering a consistent counter after a crash.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/recovery/logging"
	"repro/internal/wal"
)

func main() {
	simulated()
	functional()
}

func simulated() {
	fmt.Println("== simulated: Zipf reference strings on the paper's machine ==")
	fmt.Printf("%-6s %10s %12s %10s\n", "skew", "ms/page", "completion", "lock waits")
	for _, skew := range []float64{0, 1.2, 1.5, 2.0} {
		cfg := machine.DefaultConfig()
		cfg.NumTxns = 16
		cfg.Workload.Skew = skew
		res, err := machine.Run(cfg, logging.New(logging.Config{}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f %10.1f %12.1f %10d\n",
			skew, res.ExecPerPageMs, res.MeanCompletionMs, res.LockWaits)
	}
	fmt.Println("hot spots shorten seeks but pile transactions onto the same page locks.")
}

func enc(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func dec(b []byte) int64 { return int64(binary.BigEndian.Uint64(b)) }

func functional() {
	fmt.Println("\n== functional: one hot counter page, eight writers, then a crash ==")
	eng := engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod})
	const hot = int64(0)
	if err := eng.Load(hot, enc(0)); err != nil {
		log.Fatal(err)
	}
	// Every writer also touches a private page first so lock ordering
	// differs and deadlocks become possible.
	for p := int64(1); p <= 8; p++ {
		if err := eng.Load(p, enc(0)); err != nil {
			log.Fatal(err)
		}
	}
	const perWorker = 100
	var wg sync.WaitGroup
	for w := int64(1); w <= 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := eng.Update(func(tx *engine.Txn) error {
					// Half the workers grab the hot page first, half last.
					first, second := hot, w
					if w%2 == 0 {
						first, second = w, hot
					}
					v1, err := tx.Read(first)
					if err != nil {
						return err
					}
					if err := tx.Write(first, enc(dec(v1)+1)); err != nil {
						return err
					}
					v2, err := tx.Read(second)
					if err != nil {
						return err
					}
					return tx.Write(second, enc(dec(v2)+1))
				})
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
			}
		}()
	}
	wg.Wait()
	commits, aborts, deadlocks := eng.Stats()
	fmt.Printf("committed %d increments (%d deadlock victims retried, %d aborts)\n",
		commits, deadlocks, aborts)

	eng.Crash()
	if err := eng.Recover(); err != nil {
		log.Fatal(err)
	}
	v, err := eng.ReadCommitted(hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot counter after crash+recovery: %d (want %d)\n", dec(v), 8*perWorker)
	if dec(v) != 8*perWorker {
		log.Fatal("LOST UPDATES on the hot page")
	}
	fmt.Println("every committed increment survived the crash.")
}
