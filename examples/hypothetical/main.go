// Hypothetical: the use case behind the paper's differential-file
// architecture (Stonebraker, "Hypothetical Data Bases as Views", reference
// [20]): because updates never touch the read-only base file B — additions
// go to A, deletions to D, and the database is the view (B ∪ A) − D — one
// can run "what if" scenarios against the view and throw them away, or keep
// several scenarios over one shared base.
//
// This example builds an inventory relation, runs a hypothetical price
// change inside a transaction, compares the basic and optimal
// query-processing strategies' set-difference work (the paper's Table 9
// distinction, here in actual tuple comparisons), and shows the base
// untouched after the hypothesis is discarded.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/wal"
)

func main() {
	eng := engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod})
	for p := int64(0); p < 48; p++ {
		if err := eng.Load(p, nil); err != nil {
			log.Fatal(err)
		}
	}
	inv := relation.NewDiffView("inventory", 0, 16, 16)

	// Base stock: 200 items.
	if err := eng.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < 200; i++ {
			t := relation.Tuple{Key: i, Value: fmt.Sprintf("item-%d price=%d", i, 10+i%7)}
			if err := inv.B.Insert(tx, t); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("base inventory loaded: 200 items (read-only file B)")

	// Committed day-to-day changes go to the differentials.
	if err := eng.Update(func(tx *engine.Txn) error {
		if err := inv.Update(tx, 10, "item-10 price=99 (repriced)"); err != nil {
			return err
		}
		if err := inv.Delete(tx, 11); err != nil {
			return err
		}
		return inv.Insert(tx, relation.Tuple{Key: 500, Value: "item-500 price=1 (new)"})
	}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Update(func(tx *engine.Txn) error {
		frac, err := inv.DiffSizeFrac(tx)
		if err != nil {
			return err
		}
		fmt.Printf("committed changes live in A and D (differential size %.1f%% of base)\n", frac*100)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// A hypothetical scenario: discontinue every 10th item, inside one
	// transaction that is never committed.
	tx, err := eng.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 200; i += 10 {
		if err := inv.Delete(tx, i); err != nil {
			log.Fatal(err)
		}
	}
	inv.Comparisons, inv.PagesDiffed, inv.PagesSkipped = 0, 0, 0
	hypo, err := inv.Scan(tx, nil, relation.Optimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypothetical world: %d items would remain\n", len(hypo))

	// The paper's strategy comparison, in real tuple comparisons.
	pred := func(t relation.Tuple) bool { return t.Key == 42 }
	inv.Comparisons, inv.PagesDiffed, inv.PagesSkipped = 0, 0, 0
	if _, err := inv.Scan(tx, pred, relation.Basic); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basic strategy:   %6d comparisons, %3d pages set-differenced\n",
		inv.Comparisons, inv.PagesDiffed)
	inv.Comparisons, inv.PagesDiffed, inv.PagesSkipped = 0, 0, 0
	if _, err := inv.Scan(tx, pred, relation.Optimal); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal strategy: %6d comparisons, %3d pages set-differenced (%d skipped)\n",
		inv.Comparisons, inv.PagesDiffed, inv.PagesSkipped)

	// Parallel query processors over the same view.
	par, err := relation.ParallelDiffScan(tx, inv, nil, relation.Optimal, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel scan with 8 goroutine query processors: %d tuples\n", len(par))

	// Discard the hypothesis; the real inventory is untouched.
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Update(func(tx *engine.Txn) error {
		real, err := inv.Scan(tx, nil, relation.Optimal)
		if err != nil {
			return err
		}
		fmt.Printf("hypothesis discarded: real inventory still has %d items\n", len(real))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
